//! `simnet` — a deterministic discrete-event simulation engine.
//!
//! The paper's scalability evaluation (§5.2–§5.3) runs up to 262 144 workers
//! on 8192 Blue Waters nodes and 1M tasks. Reproducing those scales with
//! real threads is impossible on one machine, so the scaling experiments run
//! the executor *protocols* as discrete-event models over virtual time. This
//! crate is the engine: a virtual clock, an event heap with FIFO tie-breaks,
//! seeded randomness, and the two queueing primitives from which every
//! executor model is assembled:
//!
//! - [`ServiceStation`]: a single-server FIFO queue with per-item service
//!   time — models the CPU of an interchange, a central scheduler, or a
//!   database, and produces saturation/bottleneck behaviour.
//! - [`Link`]: latency + bandwidth pipe — models the network hops whose
//!   round-trip times the paper measured (0.07 ms Midway, 0.04 ms Blue
//!   Waters).
//!
//! Determinism: with the same seed and the same schedule order, a run is
//! bit-for-bit reproducible; events at the same instant fire in insertion
//! order.
//!
//! # Example
//!
//! ```
//! use simnet::{Sim, SimTime};
//! use std::rc::Rc;
//! use std::cell::RefCell;
//!
//! let mut sim = Sim::new(7);
//! let log = Rc::new(RefCell::new(Vec::new()));
//! let l2 = Rc::clone(&log);
//! sim.schedule_in(SimTime::from_millis(5), move |sim| {
//!     l2.borrow_mut().push(sim.now());
//! });
//! sim.run();
//! assert_eq!(*log.borrow(), vec![SimTime::from_millis(5)]);
//! ```

mod engine;
mod link;
mod station;
mod stats;
mod time;

pub use engine::Sim;
pub use link::Link;
pub use station::ServiceStation;
pub use stats::{Samples, TimeSeries};
pub use time::SimTime;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = Rc::clone(&log);
            sim.schedule_in(SimTime::from_millis(delay), move |_| {
                log.borrow_mut().push(tag);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let log = Rc::clone(&log);
            sim.schedule_in(SimTime::from_millis(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0);
        let count = Rc::new(RefCell::new(0u32));
        fn tick(sim: &mut Sim, count: Rc<RefCell<u32>>) {
            let mut c = count.borrow_mut();
            *c += 1;
            if *c < 5 {
                drop(c);
                sim.schedule_in(SimTime::from_millis(1), move |sim| tick(sim, count));
            }
        }
        let c = Rc::clone(&count);
        sim.schedule_in(SimTime::ZERO, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(4));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(Vec::new()));
        for ms in [10u64, 20, 30] {
            let fired = Rc::clone(&fired);
            sim.schedule_in(SimTime::from_millis(ms), move |sim| {
                fired.borrow_mut().push(sim.now().as_millis());
            });
        }
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*fired.borrow(), vec![10, 20]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        sim.run();
        assert_eq!(*fired.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut sim = Sim::new(0);
        // schedule_at in the past clamps to now.
        sim.schedule_in(SimTime::from_millis(10), |sim| {
            sim.schedule_at(SimTime::from_millis(3), |sim| {
                assert_eq!(sim.now(), SimTime::from_millis(10));
            });
        });
        sim.run();
    }

    #[test]
    fn deterministic_given_seed() {
        fn trace(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..10 {
                let out = Rc::clone(&out);
                let jitter = sim.rand_range(0..1000);
                sim.schedule_in(SimTime::from_micros(jitter), move |sim| {
                    out.borrow_mut().push(sim.now().as_nanos());
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn station_serializes_work() {
        let mut st = ServiceStation::new();
        let s = SimTime::from_millis(10);
        let t0 = SimTime::ZERO;
        let d1 = st.enqueue(t0, s);
        let d2 = st.enqueue(t0, s);
        let d3 = st.enqueue(t0, s);
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(20));
        assert_eq!(d3, SimTime::from_millis(30));
        assert_eq!(st.served(), 3);
    }

    #[test]
    fn station_idles_between_arrivals() {
        let mut st = ServiceStation::new();
        let s = SimTime::from_millis(1);
        let d1 = st.enqueue(SimTime::ZERO, s);
        assert_eq!(d1, SimTime::from_millis(1));
        // Next arrival long after the first completes: no queueing.
        let d2 = st.enqueue(SimTime::from_millis(100), s);
        assert_eq!(d2, SimTime::from_millis(101));
        // Utilization: 2 ms of work over 101 ms.
        let u = st.utilization(SimTime::from_millis(101));
        assert!((u - 2.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn link_adds_latency_and_serialization() {
        let mut link = Link::new(SimTime::from_micros(35), Some(1_000_000)); // 1 MB/s
                                                                             // 1000 bytes at 1 MB/s = 1 ms serialization, plus 35 us latency.
        let arrival = link.transmit(SimTime::ZERO, 1000);
        assert_eq!(arrival, SimTime::from_micros(1035));
        // Second message queues behind the first's serialization slot.
        let arrival2 = link.transmit(SimTime::ZERO, 1000);
        assert_eq!(arrival2, SimTime::from_micros(2035));
    }

    #[test]
    fn link_without_bandwidth_is_pure_latency() {
        let mut link = Link::new(SimTime::from_micros(20), None);
        assert_eq!(
            link.transmit(SimTime::ZERO, 1 << 30),
            SimTime::from_micros(20)
        );
        assert_eq!(link.transmit(SimTime::ZERO, 1), SimTime::from_micros(20));
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        let med = s.quantile(0.5);
        assert!((50.0..=51.0).contains(&med));
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn timeseries_integrates_stepwise() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 2.0);
        ts.record(SimTime::from_secs(10), 4.0);
        // 2.0 for 10 s, then 4.0 for 5 s => mean over [0, 15] = (20+20)/15
        let mean = ts.time_weighted_mean(SimTime::from_secs(15));
        assert!((mean - 40.0 / 15.0).abs() < 1e-9);
    }
}
