//! The event loop: a virtual clock driving a heap of pending closures.

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type Action = Box<dyn FnOnce(&mut Sim)>;

struct Event {
    time: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap yields earliest time, FIFO within ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation run.
///
/// Holds the virtual clock, the pending-event heap, a seeded RNG, and run
/// counters. Models keep their state in `Rc<RefCell<...>>` captured by the
/// scheduled closures; the engine itself is state-agnostic.
pub struct Sim {
    now: SimTime,
    heap: BinaryHeap<Event>,
    seq: u64,
    rng: SmallRng,
    processed: u64,
}

impl Sim {
    /// New simulation at time zero with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `action` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now.saturating_add(delay), action);
    }

    /// Schedule `action` at absolute time `at` (clamped to now — the clock
    /// never runs backwards).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq,
            action: Box::new(action),
        });
    }

    /// Execute the next event, if any. Returns false when the heap is empty.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event heap went backwards");
                self.now = ev.time;
                self.processed += 1;
                (ev.action)(self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain. Returns the number of events executed.
    pub fn run(&mut self) -> u64 {
        let start = self.processed;
        while self.step() {}
        self.processed - start
    }

    /// Run events up to and including time `horizon`, then set the clock to
    /// `horizon`. Returns the number of events executed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.processed;
        while let Some(ev) = self.heap.peek() {
            if ev.time > horizon {
                break;
            }
            self.step();
        }
        self.now = self.now.max(horizon);
        self.processed - start
    }

    /// Uniform random draw from a range (deterministic per seed).
    pub fn rand_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// Uniform random float in `[0, 1)`.
    pub fn rand_f64(&mut self) -> f64 {
        self.rng.random()
    }

    /// Direct access to the RNG for distributions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}
