//! Virtual time: exact integer nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in (or span of) virtual time, in integer nanoseconds.
///
/// Integer representation keeps the event heap's ordering exact — no
/// floating-point ties or drift over billion-event runs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (≈584 years).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// From fractional microseconds (rounds to the nearest nanosecond).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Difference, clamping at zero instead of underflowing.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Addition that saturates at [`SimTime::MAX`].
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Scale a duration by a float factor (for jitter), rounding.
    pub fn mul_f64(self, k: f64) -> SimTime {
        assert!(k >= 0.0 && k.is_finite(), "invalid scale {k}");
        SimTime((self.0 as f64 * k).round() as u64)
    }

    /// Integer division of one span by another (how many periods fit).
    pub fn div_duration(self, other: SimTime) -> u64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 / other.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimTime::from_micros_f64(1.5).as_nanos(), 1500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_millis(30));
        assert_eq!(a.mul_f64(0.5), SimTime::from_millis(5));
        assert_eq!(a.div_duration(b), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }
}
