//! Single-server FIFO queue — the bottleneck primitive.

use crate::time::SimTime;

/// A single-server queue with deterministic FIFO service.
///
/// `enqueue(now, service)` reserves the next free service slot and returns
/// its completion time; the caller schedules the completion event there.
/// Because arrivals are processed in call order, this reproduces an M/D/1-
/// style bottleneck exactly: a station with per-task service time `s`
/// saturates at `1/s` tasks per second, which is what caps each framework's
/// throughput in Table 2.
#[derive(Debug, Clone, Default)]
pub struct ServiceStation {
    busy_until: SimTime,
    busy_accum: SimTime,
    served: u64,
    max_backlog: SimTime,
}

impl ServiceStation {
    /// An idle station.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the next service slot at/after `now` taking `service` time;
    /// returns the completion instant.
    pub fn enqueue(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + service;
        self.busy_until = done;
        self.busy_accum += service;
        self.served += 1;
        let backlog = done.saturating_sub(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        done
    }

    /// Items served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Instant at which the server goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Work currently queued ahead of a new arrival at `now`.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// Largest backlog any single arrival has seen.
    pub fn max_backlog(&self) -> SimTime {
        self.max_backlog
    }

    /// Fraction of `[0, now]` the server spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            (self.busy_accum.as_secs_f64() / now.as_secs_f64()).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_tracks_queue_depth() {
        let mut st = ServiceStation::new();
        let s = SimTime::from_millis(2);
        st.enqueue(SimTime::ZERO, s);
        st.enqueue(SimTime::ZERO, s);
        assert_eq!(st.backlog(SimTime::ZERO), SimTime::from_millis(4));
        assert_eq!(st.backlog(SimTime::from_millis(3)), SimTime::from_millis(1));
        assert_eq!(st.backlog(SimTime::from_millis(10)), SimTime::ZERO);
        assert_eq!(st.max_backlog(), SimTime::from_millis(4));
    }

    #[test]
    fn saturation_throughput_is_inverse_service_time() {
        // 1 ms service => at most 1000 completions fit in the first second.
        let mut st = ServiceStation::new();
        let s = SimTime::from_millis(1);
        let mut within_first_second = 0;
        for _ in 0..5000 {
            if st.enqueue(SimTime::ZERO, s) <= SimTime::from_secs(1) {
                within_first_second += 1;
            }
        }
        assert_eq!(within_first_second, 1000);
    }

    #[test]
    fn utilization_caps_at_one() {
        let mut st = ServiceStation::new();
        for _ in 0..100 {
            st.enqueue(SimTime::ZERO, SimTime::from_millis(10));
        }
        assert_eq!(st.utilization(SimTime::from_millis(500)), 1.0);
    }
}
