//! Property tests on the discrete-event engine: time monotonicity,
//! FIFO tie-breaking, station conservation laws, and determinism.

use proptest::collection::vec;
use proptest::prelude::*;
use simnet::{ServiceStation, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events fire in nondecreasing virtual time regardless of the order
    /// they were scheduled, and ties preserve insertion order.
    #[test]
    fn event_order_is_time_then_fifo(delays in vec(0u64..1000, 1..80)) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule_in(SimTime::from_micros(d), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), i));
            });
        }
        let fired = sim.run();
        prop_assert_eq!(fired as usize, delays.len());
        let log = log.borrow();
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }

    /// A service station conserves work: completions are spaced at least
    /// one service time apart and never before their arrival + service.
    #[test]
    fn station_conservation(arrivals in vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut st = ServiceStation::new();
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut prev_done = SimTime::ZERO;
        let mut total_service = SimTime::ZERO;
        for &(at, service) in &sorted {
            let arrive = SimTime::from_micros(at);
            let service = SimTime::from_micros(service);
            let done = st.enqueue(arrive, service);
            prop_assert!(done >= arrive + service, "completed before service finished");
            prop_assert!(done >= prev_done + service, "server overlapped jobs");
            prev_done = done;
            total_service += service;
        }
        prop_assert_eq!(st.served(), sorted.len() as u64);
        // Busy time can never exceed the horizon.
        let horizon = prev_done.max(SimTime::from_micros(10_000));
        prop_assert!(st.utilization(horizon) <= 1.0 + 1e-9);
        // The server is busy at least total_service/horizon of the time.
        let min_util = total_service.as_secs_f64() / horizon.as_secs_f64();
        prop_assert!(st.utilization(horizon) >= min_util - 1e-9);
    }

    /// Identical seeds and schedules produce identical traces; the clock
    /// equals the max event time when the heap drains.
    #[test]
    fn determinism_and_final_clock(delays in vec(0u64..1_000_000, 1..50), seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let trace = Rc::new(RefCell::new(Vec::new()));
            for &d in &delays {
                let trace = Rc::clone(&trace);
                let jitter = sim.rand_range(0..100);
                sim.schedule_in(SimTime::from_nanos(d + jitter), move |sim| {
                    trace.borrow_mut().push(sim.now().as_nanos());
                });
            }
            sim.run();
            let final_trace = trace.borrow().clone();
            (sim.now().as_nanos(), final_trace)
        };
        let (end1, trace1) = run(seed);
        let (end2, trace2) = run(seed);
        prop_assert_eq!(end1, end2);
        prop_assert_eq!(&trace1, &trace2);
        prop_assert_eq!(end1, *trace1.last().unwrap());
    }

    /// run_until never executes events beyond the horizon, and a later
    /// run() picks up exactly the remainder.
    #[test]
    fn run_until_partitions_execution(delays in vec(1u64..1000, 1..60), cut in 1u64..1000) {
        let mut sim = Sim::new(0);
        let count = Rc::new(RefCell::new(0usize));
        for &d in &delays {
            let count = Rc::clone(&count);
            sim.schedule_in(SimTime::from_micros(d), move |_| {
                *count.borrow_mut() += 1;
            });
        }
        let horizon = SimTime::from_micros(cut);
        sim.run_until(horizon);
        let before = *count.borrow();
        let expected_before = delays.iter().filter(|&&d| d <= cut).count();
        prop_assert_eq!(before, expected_before);
        prop_assert!(sim.now() >= horizon);
        sim.run();
        prop_assert_eq!(*count.borrow(), delays.len());
    }
}
