//! FNV-1a hashing, used for memoization keys.
//!
//! Parsl memoizes on a hash of the app's function body plus its arguments
//! (§4.1). The reproduction hashes the app's registered identity string and
//! the wire-encoded argument bytes with FNV-1a, a simple, stable, and
//! well-distributed 64-bit hash that never changes across runs (unlike
//! `std::collections::hash_map::DefaultHasher`, which is randomly seeded and
//! would break cross-run checkpoint lookups).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a string with FNV-1a.
#[inline]
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Incremental FNV-1a hasher; also usable as a `std::hash::Hasher`.
#[derive(Clone, Debug)]
pub struct Fnv1aHasher(u64);

impl Fnv1aHasher {
    /// Start a new hash from the FNV offset basis.
    pub fn new() -> Self {
        Fnv1aHasher(FNV_OFFSET)
    }

    /// Mix in more bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Current hash value.
    #[inline]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1aHasher::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a(b"foobar"));
    }

    #[test]
    fn stable_across_calls() {
        assert_eq!(fnv1a_str("memo-key"), fnv1a_str("memo-key"));
        assert_ne!(fnv1a_str("memo-key"), fnv1a_str("memo-keY"));
    }
}
