//! Length-prefixed frames: the unit of transmission on every boundary.
//!
//! A frame is a little-endian `u32` length followed by that many payload
//! bytes. Frames cap at [`MAX_FRAME_LEN`] so a corrupt prefix can't trigger
//! an enormous allocation.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Upper bound on a single frame's payload (64 MiB).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Append `payload` as one frame to `buf`.
pub fn write_frame(buf: &mut BytesMut, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(Error::LengthOverflow(payload.len() as u64));
    }
    buf.reserve(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    Ok(())
}

/// Try to split one complete frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a full frame; callers
/// accumulate more bytes and retry.
pub fn read_frame(buf: &mut BytesMut) -> Result<Option<Bytes>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::LengthOverflow(len as u64));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    Ok(Some(buf.split_to(len).freeze()))
}

/// Incremental decoder for a frame stream arriving in arbitrary chunks
/// (TCP reads, pipes).
///
/// Feed raw bytes as they arrive with [`StreamDecoder::feed`], then drain
/// complete frames with [`StreamDecoder::next_frame`]. Bytes split at any
/// boundary — mid-prefix, mid-payload — are buffered until the frame
/// completes. A corrupt length prefix surfaces as
/// [`Error::LengthOverflow`]; the decoder never panics on hostile input.
#[derive(Default)]
pub struct StreamDecoder {
    buf: BytesMut,
}

impl StreamDecoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Append bytes read off the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, or `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>> {
        read_frame(&mut self.buf)
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Frame writer over any `io::Write` (checkpoint files, logs).
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        FrameWriter { inner }
    }

    /// Write one frame.
    pub fn write(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(Error::LengthOverflow(payload.len() as u64));
        }
        self.inner
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.inner.write_all(payload)?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        Ok(())
    }

    /// Recover the wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Frame reader over any `io::Read`.
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Read the next frame; `Ok(None)` at clean end-of-stream.
    ///
    /// A stream ending mid-frame is reported as [`Error::Eof`].
    pub fn read(&mut self) -> Result<Option<Vec<u8>>> {
        let mut len_bytes = [0u8; 4];
        match self.inner.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(Error::LengthOverflow(len as u64));
        }
        let mut payload = vec![0u8; len];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                Error::Eof
            } else {
                e.into()
            }
        })?;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"gamma").unwrap();
        assert_eq!(read_frame(&mut buf).unwrap().unwrap().as_ref(), b"alpha");
        assert_eq!(read_frame(&mut buf).unwrap().unwrap().as_ref(), b"");
        assert_eq!(read_frame(&mut buf).unwrap().unwrap().as_ref(), b"gamma");
        assert!(read_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_frame_waits_for_more_bytes() {
        let mut full = BytesMut::new();
        write_frame(&mut full, b"payload").unwrap();
        let bytes = full.to_vec();

        let mut buf = BytesMut::new();
        buf.extend_from_slice(&bytes[..3]);
        assert!(read_frame(&mut buf).unwrap().is_none());
        buf.extend_from_slice(&bytes[3..6]);
        assert!(read_frame(&mut buf).unwrap().is_none());
        buf.extend_from_slice(&bytes[6..]);
        assert_eq!(read_frame(&mut buf).unwrap().unwrap().as_ref(), b"payload");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        assert!(matches!(
            read_frame(&mut buf),
            Err(Error::LengthOverflow(_))
        ));
    }

    #[test]
    fn io_roundtrip() {
        let mut sink = Vec::new();
        {
            let mut w = FrameWriter::new(&mut sink);
            w.write(b"one").unwrap();
            w.write(b"two").unwrap();
            w.flush().unwrap();
        }
        let mut r = FrameReader::new(sink.as_slice());
        assert_eq!(r.read().unwrap().unwrap(), b"one");
        assert_eq!(r.read().unwrap().unwrap(), b"two");
        assert!(r.read().unwrap().is_none());
    }

    #[test]
    fn io_truncated_frame_is_eof() {
        let mut sink = Vec::new();
        {
            let mut w = FrameWriter::new(&mut sink);
            w.write(b"truncated payload").unwrap();
        }
        sink.truncate(sink.len() - 2);
        let mut r = FrameReader::new(sink.as_slice());
        assert!(matches!(r.read(), Err(Error::Eof)));
    }
}
