//! LEB128 varints and zigzag mapping for signed integers.

use crate::error::{Error, Result};

/// Append the LEB128 encoding of `value` to `out`.
#[inline]
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn decode_varint(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return Err(Error::VarintOverflow);
        }
        let low = (byte & 0x7f) as u64;
        // The tenth byte may only contribute one bit.
        if shift == 63 && low > 1 {
            return Err(Error::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::Eof)
}

/// Map a signed integer onto an unsigned one so small magnitudes stay small.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        encode_varint(v, &mut buf);
        let (back, used) = decode_varint(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_encoding_is_minimal() {
        let mut buf = Vec::new();
        encode_varint(127, &mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        encode_varint(128, &mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        encode_varint(u64::MAX, &mut buf);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_rejects_overlong() {
        // Eleven continuation bytes.
        let bad = [0x80u8; 11];
        assert!(matches!(decode_varint(&bad), Err(Error::VarintOverflow)));
        // Tenth byte with more than one significant bit overflows u64.
        let mut bad = vec![0xffu8; 9];
        bad.push(0x02);
        assert!(matches!(decode_varint(&bad), Err(Error::VarintOverflow)));
    }

    #[test]
    fn varint_rejects_truncation() {
        let bad = [0x80u8, 0x80];
        assert!(matches!(decode_varint(&bad), Err(Error::Eof)));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }
}
