//! `wire` — the repo's serialization substrate.
//!
//! Parsl moves tasks between processes by pickling the function and its
//! arguments. This crate plays that role for the Rust reproduction: a
//! compact, non-self-describing binary format implemented directly against
//! the [`serde`] data model, plus a length-prefixed frame protocol used at
//! every "network" boundary (the `nexus` fabric, checkpoint files, and the
//! executors' task/result payloads).
//!
//! # Format
//!
//! - unsigned integers: LEB128 varint
//! - signed integers: zigzag + varint
//! - `f32`/`f64`: IEEE-754 little-endian bits
//! - `bool`: one byte, `0`/`1`
//! - strings/bytes: varint length followed by raw bytes
//! - options: `0`/`1` tag followed by the value
//! - sequences/maps: varint length followed by elements
//! - structs/tuples: fields in declaration order, no names
//! - enums: varint variant index followed by the payload
//!
//! # Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Task { id: u64, payload: Vec<f64>, tag: Option<String> }
//!
//! let t = Task { id: 7, payload: vec![1.5, -2.0], tag: Some("align".into()) };
//! let bytes = wire::to_bytes(&t).unwrap();
//! let back: Task = wire::from_bytes(&bytes).unwrap();
//! assert_eq!(t, back);
//! ```

mod de;
mod error;
mod frame;
mod hash;
mod ser;
mod varint;

pub use de::{from_bytes, Deserializer};
pub use error::{Error, Result};
pub use frame::{read_frame, write_frame, FrameReader, FrameWriter, StreamDecoder, MAX_FRAME_LEN};
pub use hash::{fnv1a, fnv1a_str, Fnv1aHasher};
pub use ser::{to_bytes, to_writer, Serializer};
pub use varint::{decode_varint, encode_varint, zigzag_decode, zigzag_encode};

/// Serialize a value and report the encoded size in bytes.
///
/// Used by the executors to account for payload sizes when batching.
pub fn encoded_len<T: serde::Serialize>(value: &T) -> Result<usize> {
    Ok(to_bytes(value)?.len())
}

/// Decode one varint-length-prefixed string from the front of `input`
/// without copying it.
///
/// Returns the borrowed string and the total bytes consumed (prefix +
/// body). This is exactly how the format lays out strings, so protocol
/// routers can peek an address field out of an encoded frame — and then
/// forward the raw bytes verbatim — without deserializing the whole
/// message.
pub fn decode_str_prefix(input: &[u8]) -> Result<(&str, usize)> {
    let (len, used) = decode_varint(input)?;
    let len = usize::try_from(len).map_err(|_| Error::LengthOverflow(len))?;
    let end = used
        .checked_add(len)
        .ok_or(Error::LengthOverflow(len as u64))?;
    if end > input.len() {
        return Err(Error::Eof);
    }
    let s = std::str::from_utf8(&input[used..end]).map_err(|_| Error::InvalidUtf8)?;
    Ok((s, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let bytes = to_bytes(v).expect("serialize");
        from_bytes(&bytes).expect("deserialize")
    }

    #[test]
    fn roundtrip_primitives() {
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&0u8), 0u8);
        assert_eq!(roundtrip(&255u8), 255u8);
        assert_eq!(roundtrip(&-1i64), -1i64);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&i64::MAX), i64::MAX);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&core::f64::consts::PI), core::f64::consts::PI);
        assert_eq!(roundtrip(&'🦀'), '🦀');
        assert_eq!(roundtrip(&"hello".to_string()), "hello");
    }

    #[test]
    fn roundtrip_float_edge_cases() {
        assert_eq!(roundtrip(&f64::INFINITY), f64::INFINITY);
        assert_eq!(roundtrip(&f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(roundtrip(&f64::NAN).is_nan());
        assert_eq!(roundtrip(&-0.0f64).to_bits(), (-0.0f64).to_bits());
        assert_eq!(roundtrip(&f32::MIN_POSITIVE), f32::MIN_POSITIVE);
    }

    #[test]
    fn roundtrip_containers() {
        assert_eq!(roundtrip(&vec![1u32, 2, 3]), vec![1u32, 2, 3]);
        assert_eq!(roundtrip(&Vec::<String>::new()), Vec::<String>::new());
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i32);
        m.insert("b".to_string(), -2i32);
        assert_eq!(roundtrip(&m), m);
        assert_eq!(roundtrip(&Some(42u16)), Some(42u16));
        assert_eq!(roundtrip(&None::<u16>), None::<u16>);
        assert_eq!(
            roundtrip(&(1u8, "x".to_string(), 2.5f64)),
            (1u8, "x".to_string(), 2.5f64)
        );
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Shape {
        Unit,
        NewType(u32),
        Tuple(u8, u8),
        Struct { x: i64, label: String },
    }

    #[test]
    fn roundtrip_enums() {
        for s in [
            Shape::Unit,
            Shape::NewType(9),
            Shape::Tuple(1, 2),
            Shape::Struct {
                x: -5,
                label: "edge".into(),
            },
        ] {
            assert_eq!(roundtrip(&s), s);
        }
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        inner: Vec<Shape>,
        grid: Vec<Vec<f32>>,
        opt: Option<Box<Nested>>,
    }

    #[test]
    fn roundtrip_nested_struct() {
        let n = Nested {
            inner: vec![Shape::Unit, Shape::NewType(3)],
            grid: vec![vec![1.0, 2.0], vec![]],
            opt: Some(Box::new(Nested {
                inner: vec![],
                grid: vec![],
                opt: None,
            })),
        };
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, Error::TrailingBytes));
    }

    #[test]
    fn truncated_input_rejected() {
        // A truncated string body trips the hostile-length guard (the
        // declared length exceeds the remaining bytes); a truncated varint
        // trips Eof. Either way decoding must fail.
        let bytes = to_bytes(&"hello world".to_string()).unwrap();
        let err = from_bytes::<String>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::Eof | Error::LengthOverflow(_)));

        let bytes = to_bytes(&(1u64 << 40)).unwrap();
        let err = from_bytes::<u64>(&bytes[..2]).unwrap_err();
        assert!(matches!(err, Error::Eof));
    }

    #[test]
    fn encoded_len_matches() {
        let v = vec![1u64, 2, 3];
        assert_eq!(encoded_len(&v).unwrap(), to_bytes(&v).unwrap().len());
    }

    #[test]
    fn str_prefix_peek_matches_full_decode() {
        // A string followed by other fields: the peek must consume exactly
        // the string's encoding and borrow, not copy, the body.
        let mut bytes = to_bytes(&"interchange".to_string()).unwrap();
        let string_len = bytes.len();
        bytes.extend_from_slice(&to_bytes(&7u64).unwrap());
        let (s, used) = decode_str_prefix(&bytes).unwrap();
        assert_eq!(s, "interchange");
        assert_eq!(used, string_len);
        let empty = to_bytes(&String::new()).unwrap();
        assert_eq!(decode_str_prefix(&empty).unwrap(), ("", 1));
    }

    #[test]
    fn str_prefix_rejects_hostile_input() {
        // Truncated body.
        let bytes = to_bytes(&"hello".to_string()).unwrap();
        assert!(matches!(
            decode_str_prefix(&bytes[..bytes.len() - 1]),
            Err(Error::Eof)
        ));
        // Declared length far beyond the buffer.
        let mut huge = Vec::new();
        encode_varint(u64::MAX, &mut huge);
        assert!(matches!(
            decode_str_prefix(&huge),
            Err(Error::Eof) | Err(Error::LengthOverflow(_))
        ));
        // Invalid UTF-8 body.
        let bad = [2u8, 0xff, 0xfe];
        assert!(matches!(decode_str_prefix(&bad), Err(Error::InvalidUtf8)));
    }
}
