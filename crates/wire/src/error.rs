//! Error type shared by the serializer, deserializer, and frame codec.

use std::fmt;

/// Result alias for all `wire` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while encoding or decoding.
#[derive(Debug)]
pub enum Error {
    /// Input ended before the value was complete.
    Eof,
    /// Input contained bytes beyond the end of the value.
    TrailingBytes,
    /// A varint ran past ten bytes (would overflow `u64`).
    VarintOverflow,
    /// A declared length did not fit in `usize` or exceeded a frame cap.
    LengthOverflow(u64),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` scalar value was out of range.
    InvalidChar(u32),
    /// String data was not valid UTF-8.
    InvalidUtf8,
    /// An enum variant index was out of range for the target type.
    InvalidVariant(u32),
    /// The format cannot represent this request (e.g. `deserialize_any`).
    Unsupported(&'static str),
    /// Underlying I/O failure (frame reader/writer only).
    Io(std::io::Error),
    /// Error raised by a `Serialize`/`Deserialize` implementation.
    Custom(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::TrailingBytes => write!(f, "trailing bytes after value"),
            Error::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            Error::LengthOverflow(n) => write!(f, "declared length {n} too large"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b:#x}"),
            Error::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::InvalidUtf8 => write!(f, "string data is not valid UTF-8"),
            Error::InvalidVariant(v) => write!(f, "enum variant index {v} out of range"),
            Error::Unsupported(what) => write!(f, "unsupported by wire format: {what}"),
            Error::Io(e) => write!(f, "frame I/O error: {e}"),
            Error::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Custom(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Custom(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::Eof.to_string().contains("end of input"));
        assert!(Error::InvalidBool(7).to_string().contains("0x7"));
        assert!(Error::LengthOverflow(u64::MAX)
            .to_string()
            .contains("too large"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
