//! Serializer half of the wire format.

use crate::error::{Error, Result};
use crate::varint::{encode_varint, zigzag_encode};
use serde::ser::{self, Serialize};

/// Serialize `value` into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    value.serialize(&mut Serializer::new(&mut out))?;
    Ok(out)
}

/// Serialize `value`, appending to an existing buffer.
///
/// Lets callers reuse allocations on hot submit paths.
pub fn to_writer<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    value.serialize(&mut Serializer::new(out))
}

/// Streaming serializer writing the wire format into a `Vec<u8>`.
pub struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Serializer<'a> {
    /// Create a serializer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Serializer { out }
    }

    #[inline]
    fn put_varint(&mut self, v: u64) {
        encode_varint(v, self.out);
    }

    #[inline]
    fn put_len(&mut self, len: usize) {
        encode_varint(len as u64, self.out);
    }
}

/// Sequence/map serializer that buffers elements when the length is unknown
/// up front, so the count can still be prefixed.
pub struct SeqSerializer<'a> {
    parent: &'a mut Vec<u8>,
    buf: Vec<u8>,
    count: u64,
    /// true when the length was already written to `parent` and elements can
    /// stream directly.
    direct: bool,
}

impl<'a> SeqSerializer<'a> {
    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.count += 1;
        if self.direct {
            value.serialize(&mut Serializer::new(self.parent))
        } else {
            value.serialize(&mut Serializer::new(&mut self.buf))
        }
    }

    fn finish(self) -> Result<()> {
        if !self.direct {
            encode_varint(self.count, self.parent);
            self.parent.extend_from_slice(&self.buf);
        }
        Ok(())
    }
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqSerializer<'b>;
    type SerializeTuple = Compound<'b>;
    type SerializeTupleStruct = Compound<'b>;
    type SerializeTupleVariant = Compound<'b>;
    type SerializeMap = SeqSerializer<'b>;
    type SerializeStruct = Compound<'b>;
    type SerializeStructVariant = Compound<'b>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.put_varint(zigzag_encode(v));
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.put_varint(v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.put_varint(v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put_varint(variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put_varint(variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        match len {
            Some(n) => {
                self.put_len(n);
                Ok(SeqSerializer {
                    parent: self.out,
                    buf: Vec::new(),
                    count: 0,
                    direct: true,
                })
            }
            None => Ok(SeqSerializer {
                parent: self.out,
                buf: Vec::new(),
                count: 0,
                direct: false,
            }),
        }
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { out: self.out })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { out: self.out })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.put_varint(variant_index as u64);
        Ok(Compound { out: self.out })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        match len {
            Some(n) => {
                self.put_len(n);
                Ok(SeqSerializer {
                    parent: self.out,
                    buf: Vec::new(),
                    count: 0,
                    direct: true,
                })
            }
            None => Ok(SeqSerializer {
                parent: self.out,
                buf: Vec::new(),
                count: 0,
                direct: false,
            }),
        }
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { out: self.out })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.put_varint(variant_index as u64);
        Ok(Compound { out: self.out })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl<'a> ser::SerializeSeq for SeqSerializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl<'a> ser::SerializeMap for SeqSerializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        // Keys and values are interleaved; only count pairs (on the key).
        self.count += 1;
        let target: &mut Vec<u8> = if self.direct {
            self.parent
        } else {
            &mut self.buf
        };
        key.serialize(&mut Serializer::new(target))
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        let target: &mut Vec<u8> = if self.direct {
            self.parent
        } else {
            &mut self.buf
        };
        value.serialize(&mut Serializer::new(target))
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

/// Serializer for fixed-arity compounds: tuples, structs, and their variants.
pub struct Compound<'a> {
    out: &'a mut Vec<u8>,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident $(, $key:ty)?) => {
        impl<'a> ser::$trait for Compound<'a> {
            type Ok = ();
            type Error = Error;

            fn $method<T: Serialize + ?Sized>(
                &mut self,
                $(_key: $key,)?
                value: &T,
            ) -> Result<()> {
                value.serialize(&mut Serializer::new(self.out))
            }

            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);
impl_compound!(SerializeStruct, serialize_field, &'static str);
impl_compound!(SerializeStructVariant, serialize_field, &'static str);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_zero_bytes() {
        assert!(to_bytes(&()).unwrap().is_empty());
    }

    #[test]
    fn small_ints_are_one_byte() {
        assert_eq!(to_bytes(&5u64).unwrap().len(), 1);
        assert_eq!(to_bytes(&-3i64).unwrap().len(), 1);
    }

    #[test]
    fn str_layout_is_len_prefixed() {
        let b = to_bytes("ab").unwrap();
        assert_eq!(b, vec![2, b'a', b'b']);
    }

    #[test]
    fn unknown_len_seq_buffers_and_prefixes_count() {
        struct Stream;
        impl Serialize for Stream {
            fn serialize<S: ser::Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                use serde::ser::SerializeSeq;
                let mut seq = serializer.serialize_seq(None)?;
                for i in 0u8..3 {
                    seq.serialize_element(&i)?;
                }
                seq.end()
            }
        }
        let b = to_bytes(&Stream).unwrap();
        assert_eq!(b, vec![3, 0, 1, 2]);
    }

    #[test]
    fn to_writer_appends() {
        let mut buf = vec![0xAA];
        to_writer(&1u8, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAA, 1]);
    }
}
