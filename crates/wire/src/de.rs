//! Deserializer half of the wire format.

use crate::error::{Error, Result};
use crate::varint::{decode_varint, zigzag_decode};
use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

/// Deserialize a value of type `T` from `input`, requiring the whole slice to
/// be consumed.
pub fn from_bytes<'de, T: de::Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if de.remaining() != 0 {
        return Err(Error::TrailingBytes);
    }
    Ok(value)
}

/// Streaming deserializer over a borrowed byte slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Deserializer<'de> {
    /// Create a deserializer reading from `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.remaining() < n {
            return Err(Error::Eof);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    #[inline]
    fn byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    fn varint(&mut self) -> Result<u64> {
        let (v, used) = decode_varint(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    #[inline]
    fn length(&mut self) -> Result<usize> {
        let v = self.varint()?;
        // Any valid length is bounded by the remaining input, which guards
        // against hostile lengths pre-allocating huge buffers.
        if v > self.remaining() as u64 {
            return Err(Error::LengthOverflow(v));
        }
        Ok(v as usize)
    }
}

macro_rules! de_unsigned {
    ($fn:ident, $visit:ident, $ty:ty) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.varint()?;
            let narrowed = <$ty>::try_from(v).map_err(|_| Error::LengthOverflow(v))?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! de_signed {
    ($fn:ident, $visit:ident, $ty:ty) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = zigzag_decode(self.varint()?);
            let narrowed =
                <$ty>::try_from(v).map_err(|_| Error::LengthOverflow(v.unsigned_abs()))?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported(
            "deserialize_any on a non-self-describing format",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidBool(b)),
        }
    }

    de_signed!(deserialize_i8, visit_i8, i8);
    de_signed!(deserialize_i16, visit_i16, i16);
    de_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = zigzag_decode(self.varint()?);
        visitor.visit_i64(v)
    }

    de_unsigned!(deserialize_u8, visit_u8, u8);
    de_unsigned!(deserialize_u16, visit_u16, u16);
    de_unsigned!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.varint()?;
        visitor.visit_u64(v)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes: [u8; 4] = self.take(4)?.try_into().expect("length checked");
        visitor.visit_f32(f32::from_le_bytes(bytes))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("length checked");
        visitor.visit_f64(f64::from_le_bytes(bytes))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.varint()?;
        let scalar = u32::try_from(v).map_err(|_| Error::InvalidChar(u32::MAX))?;
        let c = char::from_u32(scalar).ok_or(Error::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.length()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.length()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidBool(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.length()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.length()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported("field identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Unsupported(
            "cannot skip values in a non-self-describing format",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/map access driven by an element count.
struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let index = self.de.varint()?;
        let index = u32::try_from(index).map_err(|_| Error::InvalidVariant(u32::MAX))?;
        let index_de: de::value::U32Deserializer<Error> = index.into_deserializer();
        let value = seed.deserialize(index_de)?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self.de,
            remaining: fields.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrowed_str_deserializes_zero_copy() {
        let bytes = crate::to_bytes("borrowed").unwrap();
        let s: &str = from_bytes(&bytes).unwrap();
        assert_eq!(s, "borrowed");
    }

    #[test]
    fn narrowing_overflow_is_detected() {
        let bytes = crate::to_bytes(&300u64).unwrap();
        assert!(from_bytes::<u8>(&bytes).is_err());
        let bytes = crate::to_bytes(&-200i64).unwrap();
        assert!(from_bytes::<i8>(&bytes).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        // Claims a 2^40-byte string with no data behind it.
        let mut bytes = Vec::new();
        crate::encode_varint(1 << 40, &mut bytes);
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(Error::LengthOverflow(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let bytes = vec![2, 0xff, 0xfe];
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(Error::InvalidUtf8)
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(Error::InvalidBool(7))
        ));
    }

    #[test]
    fn invalid_char_rejected() {
        let mut bytes = Vec::new();
        crate::encode_varint(0xD800, &mut bytes); // lone surrogate
        assert!(matches!(
            from_bytes::<char>(&bytes),
            Err(Error::InvalidChar(0xD800))
        ));
    }

    #[test]
    fn out_of_range_variant_rejected() {
        #[derive(serde::Deserialize, Debug)]
        enum E {
            #[allow(dead_code)]
            A,
        }
        let mut bytes = Vec::new();
        crate::encode_varint(9, &mut bytes);
        assert!(from_bytes::<E>(&bytes).is_err());
    }
}
