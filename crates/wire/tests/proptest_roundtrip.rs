//! Property tests: every value the task layer can produce must survive a
//! wire roundtrip, and decoding must never panic on arbitrary bytes.

use proptest::collection::{btree_map, vec};
use proptest::option;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Payload {
    Empty,
    Scalar(f64),
    Pair(i64, u64),
    Labelled { name: String, values: Vec<u32> },
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Empty),
        any::<f64>().prop_map(Payload::Scalar),
        (any::<i64>(), any::<u64>()).prop_map(|(a, b)| Payload::Pair(a, b)),
        (".{0,32}", vec(any::<u32>(), 0..16))
            .prop_map(|(name, values)| Payload::Labelled { name, values }),
    ]
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct TaskRecord {
    id: u64,
    retries: u8,
    duration: Option<f64>,
    args: Vec<Payload>,
    env: std::collections::BTreeMap<String, String>,
}

fn record_strategy() -> impl Strategy<Value = TaskRecord> {
    (
        any::<u64>(),
        any::<u8>(),
        option::of(any::<f64>()),
        vec(payload_strategy(), 0..8),
        btree_map(".{0,8}", ".{0,8}", 0..4),
    )
        .prop_map(|(id, retries, duration, args, env)| TaskRecord {
            id,
            retries,
            duration,
            args,
            env,
        })
}

fn assert_roundtrip<T>(v: &T)
where
    T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let bytes = wire::to_bytes(v).unwrap();
    let back: T = wire::from_bytes(&bytes).unwrap();
    // NaN-containing floats compare unequal; compare re-encodings instead.
    let re = wire::to_bytes(&back).unwrap();
    assert_eq!(bytes, re, "re-encoding differs for {v:?}");
}

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let bytes = wire::to_bytes(&v).unwrap();
        prop_assert_eq!(wire::from_bytes::<u64>(&bytes).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let bytes = wire::to_bytes(&v).unwrap();
        prop_assert_eq!(wire::from_bytes::<i64>(&bytes).unwrap(), v);
    }

    #[test]
    fn f64_bits_roundtrip(v in any::<f64>()) {
        let bytes = wire::to_bytes(&v).unwrap();
        prop_assert_eq!(wire::from_bytes::<f64>(&bytes).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn string_roundtrip(v in ".{0,64}") {
        let bytes = wire::to_bytes(&v).unwrap();
        prop_assert_eq!(wire::from_bytes::<String>(&bytes).unwrap(), v);
    }

    #[test]
    fn record_roundtrip(rec in record_strategy()) {
        assert_roundtrip(&rec);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        wire::encode_varint(v, &mut buf);
        let (back, used) = wire::decode_varint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(wire::zigzag_decode(wire::zigzag_encode(v)), v);
    }

    /// Decoding arbitrary garbage must fail cleanly, never panic.
    #[test]
    fn decode_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = wire::from_bytes::<TaskRecord>(&bytes);
        let _ = wire::from_bytes::<Vec<String>>(&bytes);
        let _ = wire::from_bytes::<(u64, f64, bool)>(&bytes);
    }

    /// Framing arbitrary payload sequences preserves both content and order.
    #[test]
    fn frame_stream_roundtrip(payloads in vec(vec(any::<u8>(), 0..128), 0..16)) {
        let mut buf = bytes::BytesMut::new();
        for p in &payloads {
            wire::write_frame(&mut buf, p).unwrap();
        }
        for p in &payloads {
            let frame = wire::read_frame(&mut buf).unwrap().expect("frame present");
            prop_assert_eq!(frame.as_ref(), p.as_slice());
        }
        prop_assert!(wire::read_frame(&mut buf).unwrap().is_none());
    }
}
