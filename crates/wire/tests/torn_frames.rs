//! Torn-frame tests: the stream decoder must survive frames split at every
//! byte boundary and hostile trailing bytes without panicking — either the
//! identical frame sequence comes out, or a clean `Err`.

use bytes::BytesMut;
use wire::{write_frame, StreamDecoder, MAX_FRAME_LEN};

/// Encode `payloads` into one contiguous byte stream of frames.
fn stream_of(payloads: &[&[u8]]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    for p in payloads {
        write_frame(&mut buf, p).unwrap();
    }
    buf.to_vec()
}

/// Drain every complete frame currently decodable.
fn drain(dec: &mut StreamDecoder) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame().expect("valid stream decodes cleanly") {
        out.push(f.to_vec());
    }
    out
}

#[test]
fn split_at_every_byte_boundary_yields_identical_frames() {
    let payloads: [&[u8]; 4] = [b"alpha", b"", b"a longer frame payload \x00\xff", b"z"];
    let stream = stream_of(&payloads);
    let want: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();

    // Two-chunk split at every boundary, including 0 and len.
    for cut in 0..=stream.len() {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        dec.feed(&stream[..cut]);
        got.extend(drain(&mut dec));
        dec.feed(&stream[cut..]);
        got.extend(drain(&mut dec));
        assert_eq!(got, want, "split at byte {cut}");
        assert_eq!(dec.buffered(), 0, "no residue after split at byte {cut}");
    }
}

#[test]
fn byte_at_a_time_feed_yields_identical_frames() {
    let payloads: [&[u8]; 3] = [b"one", b"\x01\x02\x03\x04", b""];
    let stream = stream_of(&payloads);
    let want: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();

    let mut dec = StreamDecoder::new();
    let mut got = Vec::new();
    for b in &stream {
        dec.feed(std::slice::from_ref(b));
        got.extend(drain(&mut dec));
    }
    assert_eq!(got, want);
}

#[test]
fn trailing_garbage_is_clean_error_or_pending_never_panic() {
    let stream = stream_of(&[b"good frame"]);

    // Append garbage whose first 4 bytes, read as a length prefix, range
    // from tiny (looks like an incomplete frame: decoder waits) to huge
    // (tripping LengthOverflow). Either outcome is acceptable; panicking
    // or corrupting already-decoded frames is not.
    for garbage in [
        &[0xffu8, 0xff, 0xff, 0xff][..],
        &[0x01, 0x00, 0x00, 0xf0][..],
        &[0x00][..],
        &[0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22][..],
    ] {
        let mut dec = StreamDecoder::new();
        dec.feed(&stream);
        dec.feed(garbage);
        let first = dec.next_frame().unwrap().expect("good frame decodes");
        assert_eq!(first.as_ref(), b"good frame");
        // Whatever follows must resolve without panicking.
        match dec.next_frame() {
            Ok(None) => {}                                    // waiting for more bytes
            Ok(Some(f)) => assert!(f.len() <= MAX_FRAME_LEN), // garbage happened to parse
            Err(_) => {}                                      // clean error
        }
    }
}

#[test]
fn oversized_prefix_is_clean_error_at_any_split() {
    let mut bad = Vec::new();
    bad.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    bad.extend_from_slice(b"body");

    for cut in 0..=bad.len() {
        let mut dec = StreamDecoder::new();
        dec.feed(&bad[..cut]);
        // Before the full prefix arrives the decoder just waits.
        if cut < 4 {
            assert!(dec.next_frame().unwrap().is_none(), "cut {cut}");
        }
        dec.feed(&bad[cut..]);
        assert!(dec.next_frame().is_err(), "cut {cut}");
    }
}

#[test]
fn interleaved_feeds_preserve_frame_order() {
    let frames: Vec<Vec<u8>> = (0..64u32)
        .map(|i| i.to_le_bytes().repeat((i % 7 + 1) as usize))
        .collect();
    let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
    let stream = stream_of(&refs);

    // Feed in irregular chunk sizes.
    let mut dec = StreamDecoder::new();
    let mut got = Vec::new();
    let mut pos = 0usize;
    let mut step = 1usize;
    while pos < stream.len() {
        let end = (pos + step).min(stream.len());
        dec.feed(&stream[pos..end]);
        got.extend(drain(&mut dec));
        pos = end;
        step = step % 13 + 1;
    }
    assert_eq!(got, frames);
    assert_eq!(dec.buffered(), 0);
}
