//! Dask-distributed-style executor: a centralized scheduler.
//!
//! Dask distributed "relies on a centralized scheduler that coordinates
//! task submission and dynamic scheduling across multiple nodes". Every
//! worker holds a connection to the scheduler, which makes a per-task
//! placement decision. The paper measured the highest small-scale
//! throughput of all systems (2617 tasks/s — "optimized for short duration
//! jobs on small clusters") but connection failures at 8192 workers.

use crate::ipp::deliver_results_loop;
use nexus::{Addr, Endpoint, Fabric};
use parking_lot::Mutex;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use parsl_executors::kernel;
use parsl_executors::proto::{encode, ToClient, ToInterchange, ToManager, WireTask};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Dask-like configuration.
#[derive(Debug, Clone)]
pub struct DaskConfig {
    /// Executor label.
    pub label: String,
    /// Worker count.
    pub workers: usize,
    /// Scheduler connection cap (paper: failures at 8192).
    pub max_connections: usize,
}

impl Default for DaskConfig {
    fn default() -> Self {
        DaskConfig {
            label: "dask".into(),
            workers: 4,
            max_connections: 8192,
        }
    }
}

struct Shared {
    cfg: DaskConfig,
    fabric: Fabric,
    sched_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected: AtomicUsize,
    stop: AtomicBool,
}

/// Dask-distributed-style executor. See module docs.
pub struct DaskLikeExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<Endpoint>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl DaskLikeExecutor {
    /// Build over a private fabric.
    pub fn new(cfg: DaskConfig) -> Self {
        let sched_addr = Addr::new(format!("{}:scheduler", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        DaskLikeExecutor {
            shared: Arc::new(Shared {
                cfg,
                fabric: Fabric::new(),
                sched_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
            }),
            client_ep: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
        }
    }
}

impl Executor for DaskLikeExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        let sched_ep = self
            .shared
            .fabric
            .bind(self.shared.sched_addr.clone())
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let client_ep = Arc::new(
            self.shared
                .fabric
                .bind(self.shared.client_addr.clone())
                .map_err(|e| ExecutorError::Comm(e.to_string()))?,
        );
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let sched = std::thread::Builder::new()
            .name(format!("{}-scheduler", shared.cfg.label))
            .spawn(move || scheduler_loop(shared, sched_ep))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let ctx2 = ctx.clone();
        let client = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || deliver_results_loop(&shared.stop, &shared.outstanding, client_ep, ctx2))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        self.threads.lock().extend([sched, client]);

        for i in 0..self.shared.cfg.workers {
            let shared = Arc::clone(&self.shared);
            let registry = Arc::clone(&ctx.registry);
            let handle = std::thread::Builder::new()
                .name(format!("{}-worker-{i}", self.shared.cfg.label))
                .spawn(move || worker_loop(shared, registry, i))
                .map_err(|e| ExecutorError::Comm(e.to_string()))?;
            self.threads.lock().push(handle);
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask {
            id: task.id.0,
            attempt: task.attempt,
            app_id: task.app.id.0,
            tenant: task.tenant.0,
            items: task.items,
            args: task.args.to_vec(),
        };
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.sched_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.sched_addr, encode(&ToInterchange::Shutdown));
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for DaskLikeExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The centralized scheduler: per-task decisions over per-worker state.
///
/// Unlike HTEX's interchange (which batches and delegates to managers),
/// this scheduler maintains occupancy for every worker and decides task by
/// task — the architectural behaviour that is fast at small scale and
/// limits Dask at large scale.
fn scheduler_loop(shared: Arc<Shared>, ep: Endpoint) {
    let mut workers: HashMap<Addr, usize> = HashMap::new(); // addr -> queued depth
    let mut queued: VecDeque<WireTask> = VecDeque::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(env) = ep.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        match parsl_executors::proto::decode::<ToInterchange>(&env.payload) {
            Ok(ToInterchange::Submit(t)) => queued.push_back(t),
            Ok(ToInterchange::Register { .. }) => {
                if workers.len() >= shared.cfg.max_connections {
                    // Connection refused (paper: observed at 8192 workers).
                    let _ = ep.send(&env.from, encode(&ToManager::Shutdown));
                } else {
                    shared.connected.fetch_add(1, Ordering::Relaxed);
                    workers.insert(env.from, 0);
                }
            }
            Ok(ToInterchange::Results(results)) => {
                if let Some(depth) = workers.get_mut(&env.from) {
                    *depth = depth.saturating_sub(results.len());
                }
                let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(results)));
            }
            Ok(ToInterchange::Shutdown) => break,
            _ => {}
        }
        // Per-task decision: place on the least-occupied worker.
        while !queued.is_empty() {
            let Some((addr, _)) = workers.iter().min_by_key(|(_, &d)| d) else {
                break;
            };
            let addr = addr.clone();
            let depth = workers.get(&addr).copied().unwrap_or(0);
            if depth >= 2 {
                break; // everyone busy enough; wait for results
            }
            let t = queued.pop_front().expect("non-empty");
            if ep.send(&addr, encode(&ToManager::Tasks(vec![t]))).is_err() {
                workers.remove(&addr);
                shared.connected.fetch_sub(1, Ordering::Relaxed);
            } else {
                *workers.get_mut(&addr).expect("present") += 1;
            }
        }
    }
    for w in workers.keys() {
        let _ = ep.send(w, encode(&ToManager::Shutdown));
    }
}

fn worker_loop(shared: Arc<Shared>, registry: Arc<AppRegistry>, index: usize) {
    let addr = Addr::new(format!("{}:worker-{index}", shared.cfg.label));
    let Ok(ep) = shared.fabric.bind(addr.clone()) else {
        return;
    };
    let _ = ep.send(
        &shared.sched_addr,
        encode(&ToInterchange::Register {
            name: addr.to_string(),
            capacity: 1,
            held: vec![],
        }),
    );
    loop {
        let Ok(env) = ep.recv() else { return };
        match parsl_executors::proto::decode::<ToManager>(&env.payload) {
            Ok(ToManager::Tasks(tasks)) => {
                let results: Vec<_> = tasks
                    .iter()
                    .map(|t| kernel::execute(&registry, t, addr.as_str()))
                    .collect();
                if ep
                    .send(&shared.sched_addr, encode(&ToInterchange::Results(results)))
                    .is_err()
                {
                    return;
                }
            }
            Ok(ToManager::Shutdown) => return,
            _ => {}
        }
    }
}
