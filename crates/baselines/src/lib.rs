//! `baselines` — the comparison systems from §5 of the paper.
//!
//! The paper evaluates Parsl against IPyParallel, FireWorks, and Dask
//! distributed. We reproduce each system's *architecture* — the mechanism
//! that determines its performance envelope — rather than its codebase:
//!
//! - [`IppExecutor`]: an IPyParallel-style **hub** to which every engine
//!   (worker) connects directly; the hub tracks each task individually
//!   (no batching), which is what limits its throughput and scale;
//! - [`DaskLikeExecutor`]: a **centralized scheduler** making a per-task
//!   placement decision over directly connected workers — fast for short
//!   tasks on small clusters, capped by per-worker connection state;
//! - [`FireworksExecutor`]: a central **LaunchPad database**; FireWorkers
//!   *poll* the database on an interval to claim work and write results
//!   back. Polling a central store is why FireWorks supports "concurrent
//!   execution of few (<1000) long-running tasks (>100 s)" and tops out
//!   at single-digit tasks per second.
//!
//! All three implement `parsl_core::Executor`, so any Parsl program can run
//! unmodified against a baseline (that's how the latency/throughput
//! benches compare them). The [`model`] module provides their
//! discrete-event counterparts for paper-scale sweeps.

mod dask;
mod fireworks;
mod ipp;
pub mod model;

pub use dask::{DaskConfig, DaskLikeExecutor};
pub use fireworks::{FireworksConfig, FireworksExecutor};
pub use ipp::{IppConfig, IppExecutor};

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::prelude::*;
    use std::time::Duration;

    fn run_hundred(dfk: &std::sync::Arc<DataFlowKernel>) {
        let square = dfk.python_app("square", |x: u64| x * x);
        let futs: Vec<_> = (0..100u64).map(|i| parsl_core::call!(square, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn ipp_runs_parsl_programs() {
        let dfk = DataFlowKernel::builder()
            .executor(IppExecutor::new(IppConfig {
                engines: 4,
                ..Default::default()
            }))
            .build()
            .unwrap();
        run_hundred(&dfk);
        dfk.shutdown();
    }

    #[test]
    fn dask_runs_parsl_programs() {
        let dfk = DataFlowKernel::builder()
            .executor(DaskLikeExecutor::new(DaskConfig {
                workers: 4,
                ..Default::default()
            }))
            .build()
            .unwrap();
        run_hundred(&dfk);
        dfk.shutdown();
    }

    #[test]
    fn fireworks_runs_parsl_programs() {
        let dfk = DataFlowKernel::builder()
            .executor(FireworksExecutor::new(FireworksConfig {
                workers: 4,
                poll_interval: Duration::from_millis(5),
                ..Default::default()
            }))
            .build()
            .unwrap();
        run_hundred(&dfk);
        dfk.shutdown();
    }

    #[test]
    fn dask_connection_cap_rejects_workers() {
        let d = DaskLikeExecutor::new(DaskConfig {
            workers: 4,
            max_connections: 2,
            ..Default::default()
        });
        let dfk = DataFlowKernel::builder()
            .executor_arc(std::sync::Arc::new(d))
            .build()
            .unwrap();
        // Only 2 of the 4 workers may connect.
        let ex = dfk.executor("dask").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while ex.connected_workers() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(ex.connected_workers(), 2);
        // Work still completes on the connected subset.
        let id = dfk.python_app("id", |x: u8| x);
        assert_eq!(parsl_core::call!(id, 7u8).result().unwrap(), 7);
        dfk.shutdown();
    }

    #[test]
    fn fireworks_polling_dominates_latency() {
        // With a 50 ms poll interval, a single task's latency must be at
        // least one poll period — the architectural cost the paper measures.
        let dfk = DataFlowKernel::builder()
            .executor(FireworksExecutor::new(FireworksConfig {
                workers: 1,
                poll_interval: Duration::from_millis(50),
                ..Default::default()
            }))
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: u8| x);
        // Warm-up task so the worker's poll loop is in steady state.
        let _ = parsl_core::call!(id, 0u8).result().unwrap();
        let t0 = std::time::Instant::now();
        let _ = parsl_core::call!(id, 1u8).result().unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(10),
            "poll-based claim should not be instant, got {elapsed:?}"
        );
        dfk.shutdown();
    }

    #[test]
    fn baselines_handle_app_failures() {
        for (name, dfk) in [
            (
                "ipp",
                DataFlowKernel::builder()
                    .executor(IppExecutor::new(IppConfig {
                        engines: 2,
                        ..Default::default()
                    }))
                    .build()
                    .unwrap(),
            ),
            (
                "dask",
                DataFlowKernel::builder()
                    .executor(DaskLikeExecutor::new(DaskConfig {
                        workers: 2,
                        ..Default::default()
                    }))
                    .build()
                    .unwrap(),
            ),
        ] {
            let boom = dfk.python_app_fallible("boom", || -> Result<u8, AppError> {
                Err(AppError::msg("nope"))
            });
            let f = parsl_core::call!(boom);
            assert!(f.result().is_err(), "{name} must propagate failures");
            dfk.shutdown();
        }
    }
}
