//! IPyParallel-style executor: a hub with directly connected engines.
//!
//! IPP's hub brokers every task individually between the client and its
//! engines and keeps per-task state for its interactive features; there is
//! no batching or prefetching. The paper measured 330 tasks/s through the
//! hub and failures past 2048 engines.

use nexus::{Addr, Endpoint, Fabric};
use parking_lot::Mutex;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use parsl_executors::kernel;
use parsl_executors::proto::{encode, ToClient, ToInterchange, ToManager, WireTask};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// IPP configuration.
#[derive(Debug, Clone)]
pub struct IppConfig {
    /// Executor label.
    pub label: String,
    /// Number of engines (workers).
    pub engines: usize,
    /// Engine connections the hub accepts before failing, per the paper's
    /// observed 2048-worker limit.
    pub max_connections: usize,
}

impl Default for IppConfig {
    fn default() -> Self {
        IppConfig {
            label: "ipp".into(),
            engines: 4,
            max_connections: 2048,
        }
    }
}

struct Shared {
    cfg: IppConfig,
    fabric: Fabric,
    hub_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected: AtomicUsize,
    stop: AtomicBool,
}

/// IPyParallel-style executor. See module docs.
pub struct IppExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<Endpoint>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl IppExecutor {
    /// Build over a private fabric.
    pub fn new(cfg: IppConfig) -> Self {
        let hub_addr = Addr::new(format!("{}:hub", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        IppExecutor {
            shared: Arc::new(Shared {
                cfg,
                fabric: Fabric::new(),
                hub_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
            }),
            client_ep: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
        }
    }
}

impl Executor for IppExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        let hub_ep = self
            .shared
            .fabric
            .bind(self.shared.hub_addr.clone())
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let client_ep = Arc::new(
            self.shared
                .fabric
                .bind(self.shared.client_addr.clone())
                .map_err(|e| ExecutorError::Comm(e.to_string()))?,
        );
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let hub = std::thread::Builder::new()
            .name(format!("{}-hub", shared.cfg.label))
            .spawn(move || hub_loop(shared, hub_ep))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let ctx2 = ctx.clone();
        let client = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || client_loop(shared, client_ep, ctx2))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        self.threads.lock().extend([hub, client]);

        for i in 0..self.shared.cfg.engines {
            let shared = Arc::clone(&self.shared);
            let registry = Arc::clone(&ctx.registry);
            let handle = std::thread::Builder::new()
                .name(format!("{}-engine-{i}", self.shared.cfg.label))
                .spawn(move || engine_loop(shared, registry, i))
                .map_err(|e| ExecutorError::Comm(e.to_string()))?;
            self.threads.lock().push(handle);
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask {
            id: task.id.0,
            attempt: task.attempt,
            app_id: task.app.id.0,
            tenant: task.tenant.0,
            items: task.items,
            args: task.args.to_vec(),
        };
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.hub_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.hub_addr, encode(&ToInterchange::Shutdown));
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for IppExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn hub_loop(shared: Arc<Shared>, ep: Endpoint) {
    let mut idle: VecDeque<Addr> = VecDeque::new();
    let mut queued: VecDeque<WireTask> = VecDeque::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(env) = ep.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        match parsl_executors::proto::decode::<ToInterchange>(&env.payload) {
            Ok(ToInterchange::Submit(t)) => queued.push_back(t),
            Ok(ToInterchange::Register { .. }) => {
                if shared.connected.load(Ordering::Relaxed) >= shared.cfg.max_connections {
                    // Connection refused: the engine gets no reply and its
                    // thread exits (paper: failures past 2048 engines).
                    let _ = ep.send(&env.from, encode(&ToManager::Shutdown));
                } else {
                    shared.connected.fetch_add(1, Ordering::Relaxed);
                    idle.push_back(env.from);
                }
            }
            Ok(ToInterchange::Results(results)) => {
                idle.push_back(env.from);
                let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(results)));
            }
            Ok(ToInterchange::Shutdown) => break,
            _ => {}
        }
        // One-at-a-time dispatch: IPP's hub has no batching.
        while let (Some(_), false) = (idle.front(), queued.is_empty()) {
            let w = idle.pop_front().expect("non-empty");
            let t = queued.pop_front().expect("non-empty");
            if ep.send(&w, encode(&ToManager::Tasks(vec![t]))).is_err() {
                shared.connected.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
    while let Some(w) = idle.pop_front() {
        let _ = ep.send(&w, encode(&ToManager::Shutdown));
    }
}

fn engine_loop(shared: Arc<Shared>, registry: Arc<AppRegistry>, index: usize) {
    let addr = Addr::new(format!("{}:engine-{index}", shared.cfg.label));
    let Ok(ep) = shared.fabric.bind(addr.clone()) else {
        return;
    };
    let _ = ep.send(
        &shared.hub_addr,
        encode(&ToInterchange::Register {
            name: addr.to_string(),
            capacity: 1,
            held: vec![],
        }),
    );
    loop {
        let Ok(env) = ep.recv() else { return };
        match parsl_executors::proto::decode::<ToManager>(&env.payload) {
            Ok(ToManager::Tasks(tasks)) => {
                let results: Vec<_> = tasks
                    .iter()
                    .map(|t| kernel::execute(&registry, t, addr.as_str()))
                    .collect();
                if ep
                    .send(&shared.hub_addr, encode(&ToInterchange::Results(results)))
                    .is_err()
                {
                    return;
                }
            }
            Ok(ToManager::Shutdown) => return,
            _ => {}
        }
    }
}

fn client_loop(shared: Arc<Shared>, ep: Arc<Endpoint>, ctx: ExecutorContext) {
    deliver_results_loop(&shared.stop, &shared.outstanding, ep, ctx);
}

/// Shared client-side delivery loop used by the baseline executors.
pub(crate) fn deliver_results_loop(
    stop: &AtomicBool,
    outstanding: &AtomicUsize,
    ep: Arc<Endpoint>,
    ctx: ExecutorContext,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(env) = ep.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        if let Ok(ToClient::Results(results)) =
            parsl_executors::proto::decode::<ToClient>(&env.payload)
        {
            // Frames here are usually single-task (the hub brokers tasks
            // individually), but the completion channel carries batches.
            outstanding.fetch_sub(results.len(), Ordering::Relaxed);
            let outcomes = parsl_executors::proto::outcomes_from_results(results);
            if !outcomes.is_empty() && ctx.completions.send(outcomes).is_err() {
                return;
            }
        }
    }
}
