//! Discrete-event models of the baseline systems.
//!
//! These reuse [`parsl_executors::model::FrameworkModel`] with parameters
//! anchored to the paper's Table 2 and Figure 3 numbers for IPyParallel,
//! Dask distributed, and FireWorks (see `simcluster::calib` for the
//! provenance of each constant).

use parsl_executors::model::FrameworkModel;
use simcluster::calib;
use simnet::SimTime;

/// IPyParallel: hub-connected engines, per-task hub service 1/330 s,
/// observed limit 2048 engines.
pub fn ipp() -> FrameworkModel {
    FrameworkModel {
        name: "IPP",
        submit_overhead: calib::DFK_SUBMIT,
        kernel_overhead: calib::EXEC_KERNEL,
        extra_path: calib::EXTRA_IPP,
        round_trip_hops: 4,
        central_service: calib::IPP_HUB_SERVICE,
        max_connections: Some(calib::IPP_MAX_CONNECTIONS),
        connections_per_worker: 1.0,
        jitter: calib::JITTER_IPP,
    }
}

/// Dask distributed: centralized scheduler, fastest per-task service
/// (1/2617 s), connection failures at 8192 workers.
pub fn dask() -> FrameworkModel {
    FrameworkModel {
        name: "Dask",
        submit_overhead: calib::DFK_SUBMIT,
        kernel_overhead: calib::EXEC_KERNEL,
        extra_path: calib::EXTRA_DASK,
        round_trip_hops: 4,
        central_service: calib::DASK_SCHEDULER_SERVICE,
        max_connections: Some(calib::DASK_MAX_CONNECTIONS),
        connections_per_worker: 1.0,
        jitter: calib::JITTER_DASK,
    }
}

/// FireWorks: polled MongoDB LaunchPad, 1/4 s per task, DB timeouts at
/// 1024 workers. `extra_path` reflects a full poll interval on the
/// sequential path (not reported in Figure 3; FireWorks was only measured
/// in the scaling experiments).
pub fn fireworks() -> FrameworkModel {
    FrameworkModel {
        name: "FireWorks",
        submit_overhead: calib::DFK_SUBMIT,
        kernel_overhead: calib::EXEC_KERNEL,
        extra_path: calib::FIREWORKS_DB_SERVICE, // claim poll + write-back
        round_trip_hops: 4,
        central_service: calib::FIREWORKS_DB_SERVICE,
        max_connections: Some(calib::FIREWORKS_MAX_CONNECTIONS),
        connections_per_worker: 1.0,
        jitter: SimTime::from_millis(60),
    }
}

/// All five distributed frameworks of Figure 4, in the paper's legend
/// order, plus LLEX (latency experiment only in the paper).
pub fn figure4_lineup() -> Vec<FrameworkModel> {
    vec![
        FrameworkModel::htex(),
        FrameworkModel::exex(),
        ipp(),
        fireworks(),
        dask(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::machines;
    use simnet::SimTime;

    #[test]
    fn table2_throughputs_reproduced() {
        let one_way = machines::midway().one_way_latency();
        // (model, paper tasks/s, tolerance)
        let rows = [
            (ipp(), 330.0, 0.15),
            (FrameworkModel::htex(), 1181.0, 0.15),
            (FrameworkModel::exex(), 1176.0, 0.15),
            (dask(), 2617.0, 0.15),
        ];
        for (m, paper, tol) in rows {
            // Enough workers that the central component is the bottleneck
            // for no-op tasks, but few enough that upkeep inflation is
            // negligible — the regime where the paper measured its maxima.
            let workers = m.max_workers(usize::MAX).min(64);
            let r = m
                .run_campaign(20_000, workers, SimTime::ZERO, one_way)
                .unwrap();
            assert!(
                (r.throughput - paper).abs() / paper < tol,
                "{}: {} tasks/s vs paper {}",
                m.name,
                r.throughput,
                paper
            );
        }
    }

    #[test]
    fn fireworks_single_digit_throughput() {
        let one_way = machines::midway().one_way_latency();
        let r = fireworks()
            .run_campaign(500, 64, SimTime::ZERO, one_way)
            .unwrap();
        assert!(r.throughput < 8.0, "FireWorks throughput {}", r.throughput);
        assert!(r.throughput > 2.0, "FireWorks throughput {}", r.throughput);
    }

    #[test]
    fn table2_max_workers_reproduced() {
        let bw_limit = machines::blue_waters().total_workers();
        assert_eq!(ipp().max_workers(bw_limit), 2048);
        assert_eq!(dask().max_workers(bw_limit), 8192);
        assert_eq!(fireworks().max_workers(bw_limit), 1024);
        // HTEX/EXEX were allocation-limited in the paper, not framework-
        // limited; their model caps sit above the paper's tested points.
        assert!(FrameworkModel::htex().max_workers(bw_limit) >= 65_536);
        assert!(FrameworkModel::exex().max_workers(bw_limit) >= 262_144);
    }

    #[test]
    fn dask_beats_htex_at_small_scale_loses_at_large() {
        // "Dask distributed slightly outperforms HTEX and EXEX when there
        // are fewer than 1024 workers" — and degrades beyond.
        let one_way = machines::blue_waters().one_way_latency();
        let d = SimTime::ZERO;
        let small_dask = dask().run_campaign(50_000, 512, d, one_way).unwrap();
        let small_htex = FrameworkModel::htex()
            .run_campaign(50_000, 512, d, one_way)
            .unwrap();
        assert!(
            small_dask.makespan < small_htex.makespan,
            "dask {} vs htex {} at 512 workers",
            small_dask.makespan,
            small_htex.makespan
        );
        let big_dask = dask().run_campaign(50_000, 8192, d, one_way).unwrap();
        let big_htex = FrameworkModel::htex()
            .run_campaign(50_000, 8192, d, one_way)
            .unwrap();
        assert!(
            big_htex.makespan < big_dask.makespan,
            "htex {} vs dask {} at 8192 workers",
            big_htex.makespan,
            big_dask.makespan
        );
    }

    #[test]
    fn ipp_degrades_past_512_workers() {
        // Figure 4: "Both IPP and Dask distributed exhibit a similar trend
        // of increasing overhead as the number of workers increases beyond
        // 512."
        let one_way = machines::blue_waters().one_way_latency();
        let d = SimTime::from_millis(100);
        let at_256 = ipp().run_campaign(50_000, 256, d, one_way).unwrap();
        let at_2048 = ipp().run_campaign(50_000, 2048, d, one_way).unwrap();
        assert!(
            at_2048.makespan > at_256.makespan,
            "more workers must not help a saturated hub: {} vs {}",
            at_2048.makespan,
            at_256.makespan
        );
    }
}
