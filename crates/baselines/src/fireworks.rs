//! FireWorks-style executor: a polled central database.
//!
//! FireWorks "uses a centralized MongoDB-based LaunchPad to store tasks,
//! and allows connected FireWorkers to query tasks from LaunchPad for
//! execution". Nothing pushes work to workers: each FireWorker polls the
//! database on an interval, claims a task transactionally, runs it, and
//! writes the result back; the client polls for finished results. Every
//! step is a serialized database round trip, which is why the paper
//! measures 4 tasks/s and MongoDB timeouts past 1024 workers.

use parking_lot::Mutex;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use parsl_executors::kernel;
use parsl_executors::proto::{WireResult, WireTask};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// FireWorks-like configuration.
#[derive(Debug, Clone)]
pub struct FireworksConfig {
    /// Executor label.
    pub label: String,
    /// FireWorker count.
    pub workers: usize,
    /// How often each FireWorker (and the result collector) polls the
    /// LaunchPad. Polling, not pushing, is the architecture under test.
    pub poll_interval: Duration,
    /// Simulated per-query database service time (the MongoDB cost).
    pub db_service: Duration,
    /// Worker connections before the database starts refusing (paper:
    /// errors at 1024 workers).
    pub max_connections: usize,
}

impl Default for FireworksConfig {
    fn default() -> Self {
        FireworksConfig {
            label: "fireworks".into(),
            workers: 4,
            poll_interval: Duration::from_millis(20),
            db_service: Duration::from_micros(200),
            max_connections: 1024,
        }
    }
}

/// The LaunchPad: one big lock around task and result collections, with a
/// per-query service delay — a faithful caricature of a remote MongoDB.
struct LaunchPad {
    cfg: FireworksConfig,
    queue: Mutex<VecDeque<WireTask>>,
    results: Mutex<VecDeque<WireResult>>,
    connections: AtomicUsize,
}

impl LaunchPad {
    fn query_cost(&self) {
        if !self.cfg.db_service.is_zero() {
            std::thread::sleep(self.cfg.db_service);
        }
    }

    fn insert_task(&self, t: WireTask) {
        self.query_cost();
        self.queue.lock().push_back(t);
    }

    fn claim_task(&self) -> Option<WireTask> {
        self.query_cost();
        self.queue.lock().pop_front()
    }

    fn insert_result(&self, r: WireResult) {
        self.query_cost();
        self.results.lock().push_back(r);
    }

    fn drain_results(&self) -> Vec<WireResult> {
        self.query_cost();
        self.results.lock().drain(..).collect()
    }
}

/// FireWorks-style executor. See module docs.
pub struct FireworksExecutor {
    cfg: FireworksConfig,
    pad: Arc<LaunchPad>,
    outstanding: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    started: AtomicBool,
}

impl FireworksExecutor {
    /// Build the executor and its LaunchPad.
    pub fn new(cfg: FireworksConfig) -> Self {
        FireworksExecutor {
            pad: Arc::new(LaunchPad {
                cfg: cfg.clone(),
                queue: Mutex::new(VecDeque::new()),
                results: Mutex::new(VecDeque::new()),
                connections: AtomicUsize::new(0),
            }),
            cfg,
            outstanding: Arc::new(AtomicUsize::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            started: AtomicBool::new(false),
        }
    }
}

impl Executor for FireworksExecutor {
    fn label(&self) -> &str {
        &self.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        if self.started.swap(true, Ordering::AcqRel) {
            return Err(ExecutorError::Rejected("already started".into()));
        }
        // FireWorkers.
        for i in 0..self.cfg.workers {
            if self.pad.connections.fetch_add(1, Ordering::Relaxed) >= self.cfg.max_connections {
                // Database refuses further connections.
                self.pad.connections.fetch_sub(1, Ordering::Relaxed);
                break;
            }
            let pad = Arc::clone(&self.pad);
            let stop = Arc::clone(&self.stop);
            let registry: Arc<AppRegistry> = Arc::clone(&ctx.registry);
            let poll = self.cfg.poll_interval;
            let name = format!("{}-fireworker-{i}", self.cfg.label);
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match pad.claim_task() {
                            Some(task) => {
                                let result = kernel::execute(&registry, &task, &name);
                                pad.insert_result(result);
                            }
                            None => std::thread::sleep(poll),
                        }
                    }
                })
                .map_err(|e| ExecutorError::Comm(e.to_string()))?;
            self.threads.lock().push(handle);
        }

        // Result collector: polls the pad and feeds the DFK.
        {
            let pad = Arc::clone(&self.pad);
            let stop = Arc::clone(&self.stop);
            let outstanding = Arc::clone(&self.outstanding);
            let poll = self.cfg.poll_interval;
            let handle = std::thread::Builder::new()
                .name(format!("{}-collector", self.cfg.label))
                .spawn(move || loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let batch = pad.drain_results();
                    if batch.is_empty() {
                        std::thread::sleep(poll);
                        continue;
                    }
                    // One poll's worth of results is one completion batch.
                    outstanding.fetch_sub(batch.len(), Ordering::Relaxed);
                    let outcomes = parsl_executors::proto::outcomes_from_results(batch);
                    if ctx.completions.send(outcomes).is_err() {
                        return;
                    }
                })
                .map_err(|e| ExecutorError::Comm(e.to_string()))?;
            self.threads.lock().push(handle);
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        if !self.started.load(Ordering::Acquire) {
            return Err(ExecutorError::NotRunning);
        }
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.pad.insert_task(WireTask {
            id: task.id.0,
            attempt: task.attempt,
            app_id: task.app.id.0,
            tenant: task.tenant.0,
            items: task.items,
            args: task.args.to_vec(),
        });
        Ok(())
    }

    fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        self.pad.connections.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FireworksExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_cap_limits_workers() {
        let ex = FireworksExecutor::new(FireworksConfig {
            workers: 8,
            max_connections: 3,
            poll_interval: Duration::from_millis(1),
            db_service: Duration::ZERO,
            ..Default::default()
        });
        let (tx, _rx) = crossbeam::channel::unbounded();
        ex.start(ExecutorContext {
            completions: tx,
            registry: AppRegistry::new(),
        })
        .unwrap();
        assert_eq!(ex.connected_workers(), 3);
        ex.shutdown();
    }
}
