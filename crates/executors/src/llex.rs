//! The Low Latency Executor (§4.3.3).
//!
//! "Since the goal of LLEX is to minimize the round-trip-time for tasks,
//! the execution model is designed to be as minimal as possible, thus
//! sacrificing features such as reliability and automated resource
//! provisioning for lower latency."
//!
//! Differences from HTEX, reproduced here:
//!
//! - workers connect to the interchange **directly** (no managers), one
//!   socket per worker, saving a message hop each way;
//! - the interchange is a **stateless relay**: it pairs queued tasks with
//!   idle workers and forwards results without any task tracking;
//! - there are **no heartbeats**: worker loss is undetectable; a task sent
//!   to a dead worker is simply lost (the paper suggests timed retries at
//!   a higher level — the DFK's per-app `walltime` + retries provide
//!   exactly that);
//! - the worker pool is fixed: no provisioning, no elasticity.

use crate::kernel;
use crate::proto::{encode, ToClient, ToInterchange, ToManager, WireResult, WireTask};
use nexus::{Addr, Endpoint, Fabric};
use parking_lot::Mutex;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// LLEX configuration.
#[derive(Debug, Clone)]
pub struct LlexConfig {
    /// Executor label.
    pub label: String,
    /// Fixed number of directly connected workers.
    pub workers: usize,
}

impl Default for LlexConfig {
    fn default() -> Self {
        LlexConfig {
            label: "llex".into(),
            workers: 4,
        }
    }
}

struct Shared {
    cfg: LlexConfig,
    fabric: Fabric,
    ix_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected: AtomicUsize,
    stop: AtomicBool,
    next_worker: AtomicU64,
}

/// The Low Latency Executor. See module docs.
pub struct LlexExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<Endpoint>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    ctx: Mutex<Option<ExecutorContext>>,
}

impl LlexExecutor {
    /// Build over a private fabric.
    pub fn new(cfg: LlexConfig) -> Self {
        Self::on_fabric(cfg, Fabric::new())
    }

    /// Build over an external fabric (latency/fault injection).
    pub fn on_fabric(cfg: LlexConfig, fabric: Fabric) -> Self {
        let ix_addr = Addr::new(format!("{}:ix", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        LlexExecutor {
            shared: Arc::new(Shared {
                cfg,
                fabric,
                ix_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
                next_worker: AtomicU64::new(0),
            }),
            client_ep: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
            ctx: Mutex::new(None),
        }
    }

    /// The fabric (for fault injection in tests).
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// Connect one more worker directly to the interchange.
    pub fn add_worker(&self) -> Addr {
        let registry = self
            .ctx
            .lock()
            .as_ref()
            .map(|c| Arc::clone(&c.registry))
            .expect("add_worker before start");
        let shared = Arc::clone(&self.shared);
        let n = shared.next_worker.fetch_add(1, Ordering::Relaxed);
        let addr = Addr::new(format!("{}:w-{n}", shared.cfg.label));
        let waddr = addr.clone();
        // Worker threads are detached: LLEX trades reliability for
        // latency, so shutdown never waits on a wedged worker (a worker
        // stuck in app code would otherwise stall teardown forever).
        std::thread::Builder::new()
            .name(format!("{}-w{n}", shared.cfg.label))
            .spawn(move || worker_loop(shared, registry, waddr))
            .expect("spawn llex worker");
        addr
    }

    /// Fault injection: kill a worker outright. LLEX cannot detect this;
    /// any task on that worker is silently lost.
    pub fn kill_worker(&self, addr: &Addr) {
        self.shared.fabric.kill(addr);
    }
}

impl Executor for LlexExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        {
            let mut slot = self.ctx.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("already started".into()));
            }
            *slot = Some(ctx.clone());
        }
        let ix_ep = self
            .shared
            .fabric
            .bind(self.shared.ix_addr.clone())
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let client_ep = Arc::new(
            self.shared
                .fabric
                .bind(self.shared.client_addr.clone())
                .map_err(|e| ExecutorError::Comm(e.to_string()))?,
        );
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let ix = std::thread::Builder::new()
            .name(format!("{}-ix", shared.cfg.label))
            .spawn(move || relay_loop(shared, ix_ep))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let client = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || client_loop(shared, client_ep, ctx))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        self.threads.lock().extend([ix, client]);

        for _ in 0..self.shared.cfg.workers {
            self.add_worker();
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask::from_spec(&task);
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.ix_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    /// Native batching on the client→relay hop only: the relay still hands
    /// workers one task at a time (LLEX trades batching for latency on the
    /// dispatch side), but a wide submission crosses the fabric as a
    /// handful of `SubmitBatch` frames instead of one frame per task.
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        crate::proto::send_task_batch(
            ep.as_ref(),
            &self.shared.ix_addr,
            &self.shared.outstanding,
            self.shared.fabric.max_frame_bytes(),
            &tasks,
        )
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    /// Configured worker count — LLEX workers are fixed at start, so this
    /// is the slot ceiling even while connections are still ramping.
    fn capacity(&self) -> usize {
        self.shared.cfg.workers
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.ix_addr, encode(&ToInterchange::Shutdown));
        }
        self.ctx.lock().take();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for LlexExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The stateless relay: pair tasks with idle workers, forward results.
/// No tracking tables, no heartbeats — "the routing logic is completely
/// stateless and opaque to the interchange".
fn relay_loop(shared: Arc<Shared>, ep: Endpoint) {
    let mut idle: VecDeque<Addr> = VecDeque::new();
    let mut queued: VecDeque<WireTask> = VecDeque::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(env) = ep.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        match crate::proto::decode::<ToInterchange>(&env.payload) {
            Ok(ToInterchange::Submit(task)) => queued.push_back(task),
            Ok(ToInterchange::SubmitBatch(tasks)) => queued.extend(tasks),
            Ok(ToInterchange::Register { .. }) => {
                shared.connected.fetch_add(1, Ordering::Relaxed);
                idle.push_back(env.from);
            }
            Ok(ToInterchange::Results(results)) => {
                // Worker is free again; forward its result unexamined.
                idle.push_back(env.from);
                let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(results)));
            }
            Ok(ToInterchange::Deregister { .. }) => {
                shared.connected.fetch_sub(1, Ordering::Relaxed);
                idle.retain(|a| a != &env.from);
            }
            Ok(ToInterchange::Shutdown) => break,
            _ => {}
        }
        // Route greedily; a dead worker send loses the task (documented
        // LLEX behaviour — reliability traded for latency).
        while !queued.is_empty() && !idle.is_empty() {
            let w = idle.pop_front().expect("non-empty");
            let t = queued.pop_front().expect("non-empty");
            if ep.send(&w, encode(&ToManager::Tasks(vec![t]))).is_err() {
                shared.connected.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
    // Stop workers.
    while let Some(w) = idle.pop_front() {
        let _ = ep.send(&w, encode(&ToManager::Shutdown));
    }
}

fn worker_loop(shared: Arc<Shared>, registry: Arc<AppRegistry>, addr: Addr) {
    let Ok(ep) = shared.fabric.bind(addr.clone()) else {
        return;
    };
    let _ = ep.send(
        &shared.ix_addr,
        encode(&ToInterchange::Register {
            name: addr.to_string(),
            capacity: 1,
            held: vec![],
        }),
    );
    loop {
        let Ok(env) = ep.recv() else { return };
        match crate::proto::decode::<ToManager>(&env.payload) {
            Ok(ToManager::Tasks(tasks)) => {
                let mut results: Vec<WireResult> = Vec::with_capacity(tasks.len());
                for t in &tasks {
                    results.push(kernel::execute(&registry, t, addr.as_str()));
                }
                if ep
                    .send(&shared.ix_addr, encode(&ToInterchange::Results(results)))
                    .is_err()
                {
                    return;
                }
            }
            Ok(ToManager::Shutdown) => return,
            _ => {}
        }
    }
}

fn client_loop(shared: Arc<Shared>, ep: Arc<Endpoint>, ctx: ExecutorContext) {
    // Even single-task LLEX frames ride the batch channel; a burst of
    // frames is coalesced by the collector's greedy drain. LLEX never
    // emits ManagerLost or CommandReply, so those arms are inert.
    crate::proto::client_recv_loop(
        ep.as_ref(),
        &shared.stop,
        &shared.outstanding,
        &ctx,
        "worker",
        None,
    );
}
