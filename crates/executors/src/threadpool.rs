//! Local thread-pool executor.
//!
//! Parsl extends `concurrent.futures` and inherits its ThreadPoolExecutor
//! for single-node runs; Figure 3 uses it as the latency baseline
//! (tasks never leave the process). This version still routes arguments
//! and results through the wire codec so behaviour (immutability through
//! serialization) matches the distributed executors.

use crate::kernel;
use crate::proto::WireTask;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use parsl_core::error::TaskError;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A fixed pool of in-process worker threads.
pub struct ThreadPoolExecutor {
    label: String,
    workers: usize,
    state: Mutex<Option<Running>>,
    outstanding: Arc<AtomicUsize>,
}

struct Running {
    tx: Sender<WireTask>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPoolExecutor {
    /// Pool with `workers` threads, labelled `"threads"`.
    pub fn new(workers: usize) -> Self {
        Self::with_label("threads", workers)
    }

    /// Pool with a custom label.
    pub fn with_label(label: &str, workers: usize) -> Self {
        assert!(workers > 0, "thread pool needs at least one worker");
        ThreadPoolExecutor {
            label: label.to_string(),
            workers,
            state: Mutex::new(None),
            outstanding: Arc::new(AtomicUsize::new(0)),
        }
    }
}

fn worker_loop(
    label: String,
    index: usize,
    rx: Receiver<WireTask>,
    ctx: ExecutorContext,
    outstanding: Arc<AtomicUsize>,
) {
    let worker_name = format!("{label}-worker-{index}");
    while let Ok(task) = rx.recv() {
        let started = Instant::now();
        let result = kernel::execute(&ctx.registry, &task, &worker_name);
        outstanding.fetch_sub(1, Ordering::Relaxed);
        let outcome = TaskOutcome {
            id: parsl_core::types::TaskId(result.id),
            attempt: result.attempt,
            result: result
                .outcome
                .map(bytes::Bytes::from)
                .map_err(TaskError::App),
            worker: Some(result.worker),
            started: Some(started),
            finished: Some(Instant::now()),
        };
        // Each outcome ships the moment it exists. A worker must never
        // hold a finished result while it executes further tasks: the
        // DFK's walltime clock keeps running on the withheld outcome, so
        // buffering here could spuriously expire (and re-run) a task that
        // succeeded in time. Completion batching for the pool happens at
        // the right layer instead — the DFK's collector greedily drains
        // the channel, coalescing a burst from all workers into one
        // completion-plane pass without ever delaying delivery.
        if ctx.completions.send(vec![outcome]).is_err() {
            return; // DFK is gone
        }
    }
}

impl Executor for ThreadPoolExecutor {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        let mut state = self.state.lock();
        if state.is_some() {
            return Err(ExecutorError::Rejected("already started".into()));
        }
        let (tx, rx) = unbounded::<WireTask>();
        let mut handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let rx = rx.clone();
            let ctx = ctx.clone();
            let label = self.label.clone();
            let outstanding = Arc::clone(&self.outstanding);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{label}-w{i}"))
                    .spawn(move || worker_loop(label, i, rx, ctx, outstanding))
                    .map_err(|e| ExecutorError::Comm(format!("spawn worker: {e}")))?,
            );
        }
        *state = Some(Running { tx, handles });
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let state = self.state.lock();
        let running = state.as_ref().ok_or(ExecutorError::NotRunning)?;
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        let wire_task = WireTask::from_spec(&task);
        running.tx.send(wire_task).map_err(|_| {
            self.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::NotRunning
        })
    }

    /// Native batching: one state-lock acquisition for the whole batch;
    /// the tasks stream into the shared MPMC worker queue back to back.
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let state = self.state.lock();
        let running = state.as_ref().ok_or(ExecutorError::NotRunning)?;
        for task in &tasks {
            self.outstanding.fetch_add(1, Ordering::Relaxed);
            running.tx.send(WireTask::from_spec(task)).map_err(|_| {
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                ExecutorError::NotRunning
            })?;
        }
        Ok(())
    }

    fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Pool size, without taking the state lock: the dispatcher reads
    /// this on the routing hot path.
    fn capacity(&self) -> usize {
        self.workers
    }

    fn connected_workers(&self) -> usize {
        if self.state.lock().is_some() {
            self.workers
        } else {
            0
        }
    }

    fn shutdown(&self) {
        if let Some(running) = self.state.lock().take() {
            drop(running.tx); // workers drain and exit
            for h in running.handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::prelude::*;

    #[test]
    fn pool_executes_parallel_tasks() {
        let dfk = DataFlowKernel::builder()
            .executor(ThreadPoolExecutor::new(4))
            .build()
            .unwrap();
        let square = dfk.python_app("square", |x: u64| x * x);
        let futs: Vec<_> = (0..100u64).map(|i| parsl_core::call!(square, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), (i * i) as u64);
        }
        dfk.shutdown();
    }

    #[test]
    fn pool_actually_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        let dfk = DataFlowKernel::builder()
            .executor(ThreadPoolExecutor::new(8))
            .build()
            .unwrap();
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static NOW: AtomicUsize = AtomicUsize::new(0);
        PEAK.store(0, Ordering::SeqCst);
        NOW.store(0, Ordering::SeqCst);
        let busy = dfk.python_app("busy", |_i: u64| {
            let n = NOW.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(n, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            NOW.fetch_sub(1, Ordering::SeqCst);
            0u8
        });
        let futs: Vec<_> = (0..8u64).map(|i| parsl_core::call!(busy, i)).collect();
        for f in &futs {
            f.result().unwrap();
        }
        assert!(
            PEAK.load(Ordering::SeqCst) >= 4,
            "expected real concurrency, peak was {}",
            PEAK.load(Ordering::SeqCst)
        );
        dfk.shutdown();
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let pool = ThreadPoolExecutor::new(2);
        let (tx, _rx) = crossbeam::channel::unbounded();
        pool.start(ExecutorContext {
            completions: tx,
            registry: parsl_core::registry::AppRegistry::new(),
        })
        .unwrap();
        assert_eq!(pool.connected_workers(), 2);
        pool.shutdown();
        assert_eq!(pool.connected_workers(), 0);
        pool.shutdown(); // second call is a no-op
        let spec_err = pool.submit(TaskSpec {
            id: TaskId(1),
            app: parsl_core::registry::AppRegistry::new().register(
                "x",
                parsl_core::types::AppKind::Native,
                "()",
                Arc::new(|_| Ok(vec![])),
                Default::default(),
            ),
            args: bytes::Bytes::new(),
            resources: Default::default(),
            tenant: Default::default(),
            attempt: 0,
            items: 1,
        });
        assert!(matches!(spec_err, Err(ExecutorError::NotRunning)));
    }
}
