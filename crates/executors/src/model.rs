//! Discrete-event models of the executors for the paper-scale experiments.
//!
//! The real thread-based executors in this crate top out around the core
//! count of one machine; Figure 4 and Table 2 need up to 262 144 workers.
//! This module models each framework's architecture as a deterministic
//! queueing network over virtual time:
//!
//! - a **client station** serializes task submission
//!   ([`simcluster::calib::DFK_SUBMIT`] per task);
//! - a **central station** (interchange / hub / scheduler / database)
//!   serializes dispatch, with the per-task service time anchored to the
//!   framework's measured Table 2 throughput;
//! - per-connection **upkeep** consumes central capacity in proportion to
//!   `connections / max_connections`, reproducing the centralized
//!   frameworks' degradation as workers grow (§5.2) and their hard
//!   connection limits (Table 2);
//! - a **worker pool** executes (kernel overhead + task duration);
//! - network hops add the machine's measured one-way latency.
//!
//! See `DESIGN.md` §5 for the calibration provenance. The *shapes* of
//! Figure 4 (who wins, where curves bend) are emergent — only Figure 3
//! means and Table 2 throughputs/limits are anchored.

use simcluster::calib;
use simnet::{Samples, ServiceStation, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Architectural parameters for one framework.
#[derive(Debug, Clone)]
pub struct FrameworkModel {
    /// Display name used by the bench harness.
    pub name: &'static str,
    /// Client-side serial cost per task.
    pub submit_overhead: SimTime,
    /// Worker-side kernel cost per task.
    pub kernel_overhead: SimTime,
    /// Extra fixed path cost on a sequential round trip (Figure 3
    /// calibration; irrelevant under pipelined load).
    pub extra_path: SimTime,
    /// Network hops on the full round trip.
    pub round_trip_hops: u32,
    /// Serial service time of the central component per task.
    pub central_service: SimTime,
    /// Hard cap on concurrent connections at the central component.
    pub max_connections: Option<usize>,
    /// Central connections opened per worker (1.0 = worker-connected;
    /// 1/32 = node-level managers; ~0 = per-pool managers).
    pub connections_per_worker: f64,
    /// Half-width of the uniform latency jitter (Figure 3 spread).
    pub jitter: SimTime,
}

impl FrameworkModel {
    /// Parsl ThreadPool executor: in-process, no central component.
    pub fn threadpool() -> Self {
        FrameworkModel {
            name: "ThreadPool",
            submit_overhead: calib::DFK_SUBMIT,
            kernel_overhead: calib::EXEC_KERNEL,
            extra_path: calib::EXTRA_THREADPOOL,
            round_trip_hops: 0,
            central_service: SimTime::ZERO,
            max_connections: None,
            connections_per_worker: 0.0,
            jitter: calib::JITTER_THREADPOOL,
        }
    }

    /// Parsl HTEX: interchange + per-node managers (32 workers/manager on
    /// Blue Waters), 6 hops (client↔ix↔manager↔worker).
    pub fn htex() -> Self {
        FrameworkModel {
            name: "Parsl-HTEX",
            submit_overhead: calib::DFK_SUBMIT,
            kernel_overhead: calib::EXEC_KERNEL,
            extra_path: calib::EXTRA_HTEX,
            round_trip_hops: 6,
            central_service: calib::HTEX_INTERCHANGE_SERVICE,
            max_connections: Some(calib::HTEX_MAX_MANAGERS),
            connections_per_worker: 1.0 / 32.0,
            jitter: calib::JITTER_HTEX,
        }
    }

    /// Parsl EXEX: interchange + per-pool rank-0 managers; pool size 32.
    pub fn exex() -> Self {
        FrameworkModel {
            name: "Parsl-EXEX",
            submit_overhead: calib::DFK_SUBMIT,
            kernel_overhead: calib::EXEC_KERNEL,
            extra_path: calib::EXTRA_EXEX,
            round_trip_hops: 6,
            central_service: calib::EXEX_INTERCHANGE_SERVICE,
            max_connections: Some(calib::EXEX_POOL_SIZE * calib::EXEX_MAX_POOLS),
            connections_per_worker: 1.0 / calib::EXEX_POOL_SIZE as f64,
            jitter: calib::JITTER_EXEX,
        }
    }

    /// Parsl LLEX: stateless relay, workers directly connected, 4 hops.
    pub fn llex() -> Self {
        FrameworkModel {
            name: "Parsl-LLEX",
            submit_overhead: calib::DFK_SUBMIT,
            kernel_overhead: calib::EXEC_KERNEL,
            extra_path: calib::EXTRA_LLEX,
            round_trip_hops: 4,
            central_service: calib::LLEX_RELAY_SERVICE,
            max_connections: None,
            connections_per_worker: 1.0,
            jitter: calib::JITTER_LLEX,
        }
    }
}

/// Why a campaign could not run at the requested scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleFailure {
    /// The central component refused connections beyond its cap.
    ConnectionsExhausted {
        /// Connections the configuration needs.
        required: usize,
        /// The framework's cap.
        cap: usize,
    },
}

impl std::fmt::Display for ScaleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleFailure::ConnectionsExhausted { required, cap } => {
                write!(f, "needs {required} central connections, cap is {cap}")
            }
        }
    }
}

/// Result of one simulated campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Virtual time from first submit to last completion.
    pub makespan: SimTime,
    /// Tasks per second over the makespan.
    pub throughput: f64,
    /// Mean task latency (completion − submission), milliseconds.
    pub mean_latency_ms: f64,
}

impl FrameworkModel {
    /// Number of central connections a worker count implies.
    pub fn connections_for(&self, workers: usize) -> usize {
        (workers as f64 * self.connections_per_worker).ceil() as usize
    }

    /// Effective central service time once per-connection upkeep
    /// (heartbeats, socket buffers, bookkeeping) is taken out of the
    /// central component's capacity. Connections beyond the hard cap are
    /// refused outright; below it, service inflates linearly, doubling at
    /// [`calib::UPKEEP_DOUBLING_CONNECTIONS`].
    pub fn effective_service(&self, workers: usize) -> Result<SimTime, ScaleFailure> {
        let conns = self.connections_for(workers);
        if let Some(cap) = self.max_connections {
            if conns > cap {
                return Err(ScaleFailure::ConnectionsExhausted {
                    required: conns,
                    cap,
                });
            }
        }
        let inflation = 1.0 + conns as f64 / calib::UPKEEP_DOUBLING_CONNECTIONS;
        Ok(self.central_service.mul_f64(inflation))
    }

    /// Largest worker count this framework can connect (Table 2 column 1).
    pub fn max_workers(&self, machine_limit: usize) -> usize {
        match self.max_connections {
            None => machine_limit,
            Some(cap) => {
                // Largest W with connections_for(W) <= cap (strictly below
                // saturation would halve throughput; the paper reports the
                // connect limit, so use the cap itself).
                let per = self.connections_per_worker;
                if per == 0.0 {
                    machine_limit
                } else {
                    (((cap as f64) / per).floor() as usize).min(machine_limit)
                }
            }
        }
    }

    /// Model the sustained task *launch* rate (tasks/s) of the
    /// client→central dispatch path when the client submits in batches of
    /// `batch` tasks per message (the Figure-5-style throughput
    /// experiment; `batch = 1` is per-task submission).
    ///
    /// Both serial stations amortize their per-message share across the
    /// batch — [`calib::SUBMIT_PER_MSG`] on the client,
    /// [`calib::CENTRAL_MSG_FRACTION`] of the effective central service at
    /// the broker — while per-task work (argument serialization, matching,
    /// tracking) is unchanged. The pipeline's rate is set by its slowest
    /// serial stage.
    pub fn dispatch_rate(&self, workers: usize, batch: usize) -> Result<f64, ScaleFailure> {
        assert!(batch >= 1, "a batch holds at least one task");
        let amortize = |t: SimTime| SimTime::from_nanos(t.as_nanos() / batch as u64);
        let client_per_task = self.submit_overhead.saturating_sub(calib::SUBMIT_PER_MSG)
            + amortize(calib::SUBMIT_PER_MSG);
        let central = self.effective_service(workers)?;
        let central_framing = central.mul_f64(calib::CENTRAL_MSG_FRACTION);
        let central_per_task = central.saturating_sub(central_framing) + amortize(central_framing);
        let bottleneck = client_per_task.max(central_per_task);
        if bottleneck == SimTime::ZERO {
            return Ok(f64::INFINITY);
        }
        Ok(1.0 / bottleneck.as_secs_f64())
    }

    /// Run a pipelined campaign: `n_tasks` of `duration` each over
    /// `workers` workers, one-way network latency `one_way`.
    ///
    /// Deterministic queueing simulation in submission order: central
    /// station → earliest-free worker → return hop. Submission itself is
    /// pipelined (the client's submit loop runs ahead of execution and its
    /// buffering overlaps with dispatch), so under load the central
    /// component's serial service is the throughput bound — which is how
    /// the paper's Table 2 maxima were measured. Submission overhead still
    /// bounds the *sequential* latency path, covered by
    /// [`FrameworkModel::run_sequential_latency`].
    pub fn run_campaign(
        &self,
        n_tasks: usize,
        workers: usize,
        duration: SimTime,
        one_way: SimTime,
    ) -> Result<CampaignResult, ScaleFailure> {
        assert!(workers > 0 && n_tasks > 0);
        let service = self.effective_service(workers)?;
        let mut central = ServiceStation::new();
        // Worker pool as a min-heap of free instants.
        let mut pool: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
        for _ in 0..workers.min(n_tasks) {
            pool.push(Reverse(SimTime::ZERO));
        }
        let forward_hops = self.round_trip_hops / 2;
        let return_hops = self.round_trip_hops - forward_hops;
        let mut last_completion = SimTime::ZERO;
        let mut latency_sum = 0f64;

        for _ in 0..n_tasks {
            let submitted = SimTime::ZERO;
            let central_arrival = submitted + self.submit_overhead + one_way * forward_hops as u64;
            let dispatched = central.enqueue(central_arrival, service);
            let Reverse(worker_free) = pool.pop().expect("pool non-empty");
            let start = dispatched.max(worker_free);
            let finished = start + self.kernel_overhead + duration;
            pool.push(Reverse(finished));
            let completed = finished + one_way * return_hops as u64;
            if completed > last_completion {
                last_completion = completed;
            }
            latency_sum += (completed - submitted).as_secs_f64();
        }

        let makespan = last_completion;
        Ok(CampaignResult {
            makespan,
            throughput: n_tasks as f64 / makespan.as_secs_f64(),
            mean_latency_ms: latency_sum / n_tasks as f64 * 1e3,
        })
    }

    /// Run the Figure 3 experiment: `n` tasks submitted **sequentially**
    /// (each after the previous completes), returning the latency samples
    /// in milliseconds.
    pub fn run_sequential_latency(
        &self,
        n: usize,
        duration: SimTime,
        one_way: SimTime,
        seed: u64,
    ) -> Samples {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut samples = Samples::new();
        // `extra_path` already contains the central component's sequential-
        // path work by construction (it was calibrated as the residual of
        // the paper's mean), so the central service is not added again.
        let base = self.submit_overhead
            + self.kernel_overhead
            + self.extra_path
            + one_way * self.round_trip_hops as u64
            + duration;
        for _ in 0..n {
            let jitter_ns = if self.jitter == SimTime::ZERO {
                0i64
            } else {
                let j = self.jitter.as_nanos() as i64;
                rng.random_range(-j..=j)
            };
            let total = base.as_nanos() as i64 + jitter_ns;
            samples.record(total.max(0) as f64 / 1e6);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::machines;

    #[test]
    fn throughput_saturates_at_inverse_service() {
        let m = FrameworkModel::htex();
        let r = m
            .run_campaign(
                50_000,
                1024,
                SimTime::ZERO,
                machines::midway().one_way_latency(),
            )
            .unwrap();
        // No-op tasks: the interchange is the bottleneck; Table 2 says
        // 1181 tasks/s for HTEX.
        assert!(
            (r.throughput - 1181.0).abs() / 1181.0 < 0.15,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn dask_like_cap_rejects_excess_workers() {
        // Simulate a worker-connected framework with a cap of 100.
        let m = FrameworkModel {
            max_connections: Some(100),
            connections_per_worker: 1.0,
            ..FrameworkModel::llex()
        };
        assert!(m.effective_service(99).is_ok());
        assert!(matches!(
            m.effective_service(101),
            Err(ScaleFailure::ConnectionsExhausted { .. })
        ));
        assert_eq!(m.max_workers(usize::MAX), 100);
    }

    #[test]
    fn upkeep_inflation_doubles_at_calibration_point() {
        let m = FrameworkModel {
            max_connections: Some(100_000),
            connections_per_worker: 1.0,
            ..FrameworkModel::llex()
        };
        let base = m.effective_service(0).unwrap();
        let doubled = m.effective_service(2048).unwrap();
        let ratio = doubled.as_secs_f64() / base.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // Monotone growth beyond.
        assert!(m.effective_service(8192).unwrap() > doubled);
    }

    #[test]
    fn latency_model_matches_figure3_means() {
        let one_way = machines::midway().one_way_latency();
        let expect = [
            (FrameworkModel::threadpool(), 1.04),
            (FrameworkModel::llex(), 3.47),
            (FrameworkModel::htex(), 6.87),
            (FrameworkModel::exex(), 9.83),
        ];
        for (m, paper_ms) in expect {
            let s = m.run_sequential_latency(1000, SimTime::ZERO, one_way, 1);
            let got = s.mean();
            // central_service adds a small extra on top of the calibrated
            // decomposition; allow 15%.
            assert!(
                (got - paper_ms).abs() / paper_ms < 0.15,
                "{}: model {got:.2} ms vs paper {paper_ms} ms",
                m.name
            );
        }
    }

    #[test]
    fn dispatch_rate_grows_with_batch_and_saturates() {
        let m = FrameworkModel::htex();
        let r1 = m.dispatch_rate(512, 1).unwrap();
        let r8 = m.dispatch_rate(512, 8).unwrap();
        let r64 = m.dispatch_rate(512, 64).unwrap();
        assert!(r8 > r1 * 1.2, "batch 8 must beat per-task: {r1} vs {r8}");
        assert!(r64 >= r8, "rate is monotone in batch size");
        // Amortization only removes the per-message share; the per-task
        // floor bounds the speedup.
        let ceiling = r1 / (1.0 - calib::CENTRAL_MSG_FRACTION.max(0.3));
        assert!(
            r64 <= ceiling * 1.5,
            "batched rate {r64} above plausible ceiling"
        );
    }

    #[test]
    fn longer_tasks_shift_bottleneck_to_workers() {
        let m = FrameworkModel::htex();
        let one_way = machines::blue_waters().one_way_latency();
        // 1 s tasks, 512 workers, 5120 tasks: worker-bound, so makespan
        // ≈ tasks/workers seconds.
        let r = m
            .run_campaign(5120, 512, SimTime::from_secs(1), one_way)
            .unwrap();
        let ideal = 5120.0 / 512.0;
        assert!(
            (r.makespan.as_secs_f64() - ideal) / ideal < 0.2,
            "makespan {} vs ideal {ideal}",
            r.makespan
        );
    }

    #[test]
    fn weak_scaling_is_flat_until_central_saturates() {
        let m = FrameworkModel::htex();
        let one_way = machines::blue_waters().one_way_latency();
        let d = SimTime::from_millis(1000);
        // 10 tasks per worker; 65 536 workers is the paper's largest HTEX
        // point (2048 nodes, allocation-limited).
        let t_small = m.run_campaign(10 * 64, 64, d, one_way).unwrap();
        let t_big = m.run_campaign(10 * 65_536, 65_536, d, one_way).unwrap();
        // Small scale: ~10 s (10 rounds of 1 s). Large scale: interchange-
        // bound: 655 k tasks at under 1181 per s >> 10 s.
        assert!(t_small.makespan.as_secs_f64() < 15.0);
        assert!(t_big.makespan.as_secs_f64() > 500.0);
    }
}
