//! The HTEX manager (pilot agent), generalized over the transport.
//!
//! One manager runs per node: it registers capacity with the interchange,
//! feeds a pool of worker threads from received task batches, batches
//! results back, and keeps the heartbeat contract (§4.3.1). The same loop
//! serves both deployment shapes:
//!
//! - **in-proc** (`HtexExecutor::add_node`): a thread holding a fabric
//!   endpoint, sharing the client's app registry;
//! - **spawned process** (`parsl-worker` bin via [`run_worker`]): a
//!   [`nexus::TcpSpoke`] back to the interchange's hub, resolving apps
//!   from the compiled-in builtin table as the interchange advertises
//!   them.
//!
//! With `reconnect` enabled the manager re-registers — carrying its held
//! `(task, attempt)` set so the interchange can reconcile accounting —
//! whenever the spoke reports a new link generation or the interchange
//! has been silent past the threshold. Without it (in-proc), prolonged
//! silence makes the manager exit, "to avoid resource wastage".

use crate::builtin;
use crate::kernel;
use crate::proto::{encode, ToInterchange, ToManager, WireResult, WireTask};
use crossbeam::channel::unbounded;
use nexus::{Addr, Port, SpokeConfig, TcpSpoke};
use parking_lot::Mutex;
use parsl_core::error::AppError;
use parsl_core::registry::{AppId, AppOptions, AppRegistry};
use parsl_core::types::AppKind;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Manager tuning, the per-node slice of `HtexConfig`.
#[derive(Debug, Clone)]
pub struct ManagerCfg {
    /// Worker threads in this manager's pool.
    pub workers: usize,
    /// Extra advertised slots beyond the workers (task prefetch).
    pub prefetch: usize,
    /// Result batch size.
    pub batch_size: usize,
    /// Heartbeat period toward the interchange.
    pub heartbeat_period: Duration,
    /// Interchange silence past this marks the link suspect.
    pub heartbeat_threshold: Duration,
    /// On a suspect link, re-register instead of exiting (TCP workers,
    /// whose spoke reconnects underneath them).
    pub reconnect: bool,
}

/// Run one manager until shutdown or link death. Blocks the caller.
pub fn manager_loop(ep: Box<dyn Port>, registry: Arc<AppRegistry>, ix_addr: Addr, cfg: ManagerCfg) {
    let addr = ep.addr().clone();

    // Worker pool: shared task queue, common result funnel. Cancelled
    // attempts (hedge losers) are checked at pick-up: the kernel is
    // skipped but a failed result still flows back, so `held` accounting
    // and the interchange's outstanding map settle identically either way.
    let (task_tx, task_rx) = unbounded::<WireTask>();
    let (result_tx, result_rx) = unbounded::<WireResult>();
    let cancelled: Arc<Mutex<HashSet<(u64, u32)>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut worker_handles = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let task_rx = task_rx.clone();
        let result_tx = result_tx.clone();
        let registry = Arc::clone(&registry);
        let cancelled = Arc::clone(&cancelled);
        let name = format!("{addr}:w{w}");
        worker_handles.push(
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    while let Ok(task) = task_rx.recv() {
                        let result = if cancelled.lock().remove(&(task.id, task.attempt)) {
                            WireResult {
                                id: task.id,
                                attempt: task.attempt,
                                outcome: Err(AppError::msg("cancelled")),
                                worker: name.clone(),
                            }
                        } else {
                            kernel::execute(&registry, &task, &name)
                        };
                        if result_tx.send(result).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }
    drop(result_tx); // manager holds only the receiver side

    let capacity = cfg.workers + cfg.prefetch;
    // Tasks accepted but not yet returned as results. Doubles as the
    // in-flight gauge for draining and as the `held` set a re-register
    // reports for accounting reconciliation.
    let mut held: HashSet<(u64, u32)> = HashSet::new();

    let send_register = |ep: &dyn Port, held: &HashSet<(u64, u32)>| {
        let _ = ep.send(
            &ix_addr,
            encode(&ToInterchange::Register {
                name: addr.to_string(),
                capacity,
                held: held.iter().copied().collect(),
            }),
        );
    };
    send_register(ep.as_ref(), &held);
    let mut last_gen = ep.generation();

    let ticker = crossbeam::channel::tick(cfg.heartbeat_period);
    let mut result_buf: Vec<WireResult> = Vec::new();
    let mut last_ix_contact = Instant::now();
    let mut draining = false;

    loop {
        crossbeam::channel::select! {
            recv(ep.receiver()) -> env => {
                let Ok(env) = env else { return }; // endpoint killed / spoke gave up
                last_ix_contact = Instant::now();
                match crate::proto::decode::<ToManager>(&env.payload) {
                    Ok(ToManager::Tasks(batch)) => {
                        for t in batch {
                            held.insert((t.id, t.attempt));
                            if task_tx.send(t).is_err() {
                                return;
                            }
                        }
                    }
                    Ok(ToManager::Apps(apps)) => {
                        // Bind advertised apps by name. In-proc managers
                        // share the client's registry, so every id already
                        // resolves and this is a no-op.
                        for a in apps {
                            if registry.get(AppId(a.id)).is_none() {
                                if let Some(func) = builtin::resolve(&a.name, &a.signature) {
                                    registry.register_remote(
                                        AppId(a.id),
                                        &a.name,
                                        AppKind::Native,
                                        &a.signature,
                                        func,
                                        AppOptions::default(),
                                    );
                                }
                            }
                        }
                    }
                    Ok(ToManager::Heartbeat) => {}
                    Ok(ToManager::Cancel { id, attempt }) => {
                        // Only attempts still held can be skipped; anything
                        // else already returned (or never arrived) and the
                        // entry would leak.
                        if held.contains(&(id, attempt)) {
                            cancelled.lock().insert((id, attempt));
                        }
                    }
                    Ok(ToManager::Shutdown) => {
                        draining = true;
                    }
                    Err(_) => {}
                }
            }
            recv(result_rx) -> res => {
                if let Ok(res) = res {
                    held.remove(&(res.id, res.attempt));
                    result_buf.push(res);
                    // Batch aggressively under load (drain whatever has
                    // already accumulated), but never sit on results when
                    // the funnel is empty — idle latency must not pay the
                    // batching timer.
                    while result_buf.len() < cfg.batch_size {
                        match result_rx.try_recv() {
                            Ok(more) => {
                                held.remove(&(more.id, more.attempt));
                                result_buf.push(more);
                            }
                            Err(_) => break,
                        }
                    }
                    flush_results(ep.as_ref(), &ix_addr, &mut result_buf);
                }
            }
            recv(ticker) -> _ => {
                // Prune cancel marks whose attempt raced its result out.
                cancelled.lock().retain(|k| held.contains(k));
                flush_results(ep.as_ref(), &ix_addr, &mut result_buf);
                let _ = ep.send(
                    &ix_addr,
                    encode(&ToInterchange::Heartbeat { name: addr.to_string() }),
                );
                let gen = ep.generation();
                if gen != last_gen {
                    // The spoke re-established the link: re-register with
                    // the held set so the interchange reconciles.
                    last_gen = gen;
                    last_ix_contact = Instant::now();
                    send_register(ep.as_ref(), &held);
                } else if last_ix_contact.elapsed() > cfg.heartbeat_threshold {
                    if cfg.reconnect {
                        // Registration may have raced the interchange
                        // coming up, or the silence is transient; try
                        // again instead of dying.
                        last_ix_contact = Instant::now();
                        send_register(ep.as_ref(), &held);
                    } else {
                        // "Managers, upon losing contact with the
                        // interchange, exit immediately to avoid resource
                        // wastage."
                        return;
                    }
                }
            }
        }
        // Deregister only after every accepted task has returned its
        // result and the inbox holds nothing new.
        if draining && held.is_empty() && ep.queued() == 0 {
            flush_results(ep.as_ref(), &ix_addr, &mut result_buf);
            let _ = ep.send(
                &ix_addr,
                encode(&ToInterchange::Deregister {
                    name: addr.to_string(),
                }),
            );
            drop(task_tx);
            for h in worker_handles {
                let _ = h.join();
            }
            return;
        }
    }
}

fn flush_results(ep: &dyn Port, ix: &Addr, buf: &mut Vec<WireResult>) {
    if buf.is_empty() {
        return;
    }
    let batch = std::mem::take(buf);
    let _ = ep.send(ix, encode(&ToInterchange::Results(batch)));
}

/// Options for a spawned `parsl-worker` process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Hub socket address to connect back to (`host:port`).
    pub connect: String,
    /// This manager's name on the transport.
    pub name: String,
    /// The interchange's name on the transport.
    pub ix: String,
    /// Worker threads.
    pub workers: usize,
    /// Prefetch slots.
    pub prefetch: usize,
    /// Result batch size.
    pub batch_size: usize,
    /// Heartbeat period.
    pub heartbeat_period: Duration,
    /// Heartbeat threshold.
    pub heartbeat_threshold: Duration,
    /// How long a dropped connection keeps retrying before the process
    /// exits.
    pub reconnect_window: Duration,
}

/// Entry point of the `parsl-worker` bin: connect a spoke to the hub and
/// serve tasks until shutdown or the reconnect window expires.
pub fn run_worker(opts: WorkerOptions) -> Result<(), String> {
    let spoke = TcpSpoke::connect(
        opts.connect.as_str(),
        Addr::new(opts.name.as_str()),
        SpokeConfig {
            reconnect_window: opts.reconnect_window,
            ..Default::default()
        },
    )
    .map_err(|e| format!("connect {}: {e}", opts.connect))?;
    // Fresh registry: apps arrive as advertisements and bind to builtins.
    let registry = AppRegistry::new();
    manager_loop(
        Box::new(spoke),
        registry,
        Addr::new(opts.ix.as_str()),
        ManagerCfg {
            workers: opts.workers,
            prefetch: opts.prefetch,
            batch_size: opts.batch_size,
            heartbeat_period: opts.heartbeat_period,
            heartbeat_threshold: opts.heartbeat_threshold,
            reconnect: true,
        },
    );
    Ok(())
}
