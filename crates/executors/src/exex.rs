//! The Extreme Scale Executor (§4.3.2).
//!
//! EXEX targets the largest machines by using MPI inside each batch job:
//! "Upon deployment, rank 0 of the MPI communicator takes the role of the
//! manager, while all other ranks assume the role of workers." The
//! reproduction deploys **pools**: each pool is a `minimpi` world whose
//! rank 0 connects to the interchange over the fabric (ZeroMQ in the
//! paper) and fans tasks out to its worker ranks over "MPI".
//!
//! The paper's fault-tolerance caveat is preserved: `minimpi` fate-sharing
//! means one dead rank kills the whole pool, so "we recommend that users
//! break their allocation into several smaller MPI worker pools within a
//! single scheduler job". Pool loss is detected by the same heartbeat
//! mechanism as HTEX.

use crate::kernel;
use crate::proto::{encode, ToClient, ToInterchange, ToManager, WireResult, WireTask};
use minimpi::{Rank, Tag, World, ANY_SOURCE};
use nexus::{Addr, Endpoint, Fabric};
use parking_lot::Mutex;
use parsl_core::executor::{BlockScaling, Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message tags on the intra-pool "MPI" communicator.
const TAG_TASK: Tag = Tag(1);
const TAG_RESULT: Tag = Tag(2);
const TAG_STOP: Tag = Tag(3);

/// EXEX configuration.
#[derive(Debug, Clone)]
pub struct ExexConfig {
    /// Executor label.
    pub label: String,
    /// Ranks per MPI pool (1 manager + N−1 workers).
    pub ranks_per_pool: usize,
    /// Task batch size from interchange to pool managers.
    pub batch_size: usize,
    /// Heartbeat period between pool managers and the interchange.
    pub heartbeat_period: Duration,
    /// Silence threshold for declaring a pool lost.
    pub heartbeat_threshold: Duration,
    /// Pools brought up at start.
    pub init_pools: usize,
    /// Elasticity floor/ceiling in pools (blocks).
    pub min_pools: usize,
    /// See `min_pools`.
    pub max_pools: usize,
    /// RNG seed for randomized pool selection.
    pub seed: u64,
}

impl Default for ExexConfig {
    fn default() -> Self {
        ExexConfig {
            label: "exex".into(),
            ranks_per_pool: 5,
            batch_size: 8,
            heartbeat_period: Duration::from_millis(100),
            heartbeat_threshold: Duration::from_millis(400),
            init_pools: 1,
            min_pools: 0,
            max_pools: usize::MAX,
            seed: 0,
        }
    }
}

struct PoolHandle {
    addr: Addr,
    /// Abort handle: firing this simulates a rank crash killing the pool.
    world_abort: Arc<dyn Fn() + Send + Sync>,
}

struct Shared {
    cfg: ExexConfig,
    fabric: Fabric,
    ix_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected_workers: AtomicUsize,
    next_pool: AtomicU64,
    stop: AtomicBool,
    pools: Mutex<Vec<PoolHandle>>,
}

/// The Extreme Scale Executor. See module docs.
pub struct ExexExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<Endpoint>>>,
    ctx: Mutex<Option<ExecutorContext>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ExexExecutor {
    /// Build over a private fabric.
    pub fn new(cfg: ExexConfig) -> Self {
        Self::on_fabric(cfg, Fabric::new())
    }

    /// Build over an external fabric.
    pub fn on_fabric(cfg: ExexConfig, fabric: Fabric) -> Self {
        assert!(
            cfg.ranks_per_pool >= 2,
            "a pool needs rank 0 plus at least one worker"
        );
        let ix_addr = Addr::new(format!("{}:ix", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        ExexExecutor {
            shared: Arc::new(Shared {
                cfg,
                fabric,
                ix_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected_workers: AtomicUsize::new(0),
                next_pool: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                pools: Mutex::new(Vec::new()),
            }),
            client_ep: Mutex::new(None),
            ctx: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// The fabric (for fault injection).
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// Deploy one more MPI pool. Returns the pool manager's address.
    pub fn add_pool(&self) -> Addr {
        let registry = self
            .ctx
            .lock()
            .as_ref()
            .map(|c| Arc::clone(&c.registry))
            .expect("add_pool before start");
        let shared = Arc::clone(&self.shared);
        let n = shared.next_pool.fetch_add(1, Ordering::Relaxed);
        let addr = Addr::new(format!("{}:pool-{n}", shared.cfg.label));

        let ranks = World::create(shared.cfg.ranks_per_pool);
        let mut iter = ranks.into_iter();
        let manager_rank = iter.next().expect("rank 0");
        // Grab an abort hook from rank 0's world before moving it.
        let abort_rank = {
            // minimpi aborts are world-wide; any rank handle can fire one.
            // We keep a closure over a dedicated tiny channel: killing the
            // pool sends a poisoned task that makes a worker abort.
            // Simpler and honest: clone nothing — build the closure from
            // the manager address and fabric: killing the fabric endpoint
            // also collapses the pool (rank 0 exits, drops handles, world
            // aborts).
            let fabric = shared.fabric.clone();
            let a = addr.clone();
            Arc::new(move || fabric.kill(&a)) as Arc<dyn Fn() + Send + Sync>
        };

        // Worker ranks.
        for rank in iter {
            let registry = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("{addr}:rank{}", rank.rank()))
                .spawn(move || worker_rank_loop(rank, registry))
                .expect("spawn exex worker rank");
            self.threads.lock().push(handle);
        }

        // Rank 0: the pool manager bridging fabric and MPI.
        {
            let shared2 = Arc::clone(&shared);
            let maddr = addr.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{addr}:rank0"))
                .spawn(move || pool_manager_loop(shared2, manager_rank, maddr))
                .expect("spawn exex pool manager");
            self.threads.lock().push(handle);
        }

        self.shared.pools.lock().push(PoolHandle {
            addr: addr.clone(),
            world_abort: abort_rank,
        });
        addr
    }

    /// Gracefully retire the most recently added pool. Routed through the
    /// interchange so no batch crosses the shutdown on the wire.
    pub fn remove_pool(&self) -> bool {
        let Some(pool) = self.shared.pools.lock().pop() else {
            return false;
        };
        if let Some(ep) = self.client_ep.lock().as_ref() {
            let _ = ep.send(
                &self.shared.ix_addr,
                encode(&ToInterchange::Retire {
                    name: pool.addr.to_string(),
                }),
            );
        }
        true
    }

    /// Fault injection: crash a pool (MPI fate-sharing — every rank dies).
    pub fn kill_pool(&self, addr: &Addr) {
        let mut pools = self.shared.pools.lock();
        if let Some(i) = pools.iter().position(|p| &p.addr == addr) {
            let pool = pools.remove(i);
            (pool.world_abort)();
        }
    }

    /// Addresses of live pools.
    pub fn pools(&self) -> Vec<Addr> {
        self.shared
            .pools
            .lock()
            .iter()
            .map(|p| p.addr.clone())
            .collect()
    }
}

impl Executor for ExexExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        {
            let mut slot = self.ctx.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("already started".into()));
            }
            *slot = Some(ctx.clone());
        }
        let ix_ep = self
            .shared
            .fabric
            .bind(self.shared.ix_addr.clone())
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let client_ep = Arc::new(
            self.shared
                .fabric
                .bind(self.shared.client_addr.clone())
                .map_err(|e| ExecutorError::Comm(e.to_string()))?,
        );
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let ix = std::thread::Builder::new()
            .name(format!("{}-ix", shared.cfg.label))
            .spawn(move || interchange_loop(shared, ix_ep))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let client = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || client_loop(shared, client_ep, ctx))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        self.threads.lock().extend([ix, client]);

        for _ in 0..self.shared.cfg.init_pools {
            self.add_pool();
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask::from_spec(&task);
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.ix_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    /// Native batching, identical on the wire to HTEX: `SubmitBatch`
    /// frames chunked at the fabric's frame budget, fanned out to pool
    /// managers by the interchange.
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        crate::proto::send_task_batch(
            ep.as_ref(),
            &self.shared.ix_addr,
            &self.shared.outstanding,
            self.shared.fabric.max_frame_bytes(),
            &tasks,
        )
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected_workers.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.ix_addr, encode(&ToInterchange::Shutdown));
        }
        self.ctx.lock().take();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn scaling(&self) -> Option<&dyn BlockScaling> {
        Some(self)
    }
}

impl BlockScaling for ExexExecutor {
    fn block_count(&self) -> usize {
        self.shared.pools.lock().len()
    }

    fn workers_per_block(&self) -> usize {
        self.shared.cfg.ranks_per_pool - 1
    }

    fn scale_out(&self, n: usize) -> usize {
        let mut added = 0;
        for _ in 0..n {
            if self.block_count() >= self.shared.cfg.max_pools {
                break;
            }
            self.add_pool();
            added += 1;
        }
        added
    }

    fn scale_in(&self, n: usize) -> usize {
        let mut removed = 0;
        for _ in 0..n {
            if self.block_count() <= self.shared.cfg.min_pools {
                break;
            }
            if !self.remove_pool() {
                break;
            }
            removed += 1;
        }
        removed
    }

    fn min_blocks(&self) -> usize {
        self.shared.cfg.min_pools
    }

    fn max_blocks(&self) -> usize {
        self.shared.cfg.max_pools
    }
}

impl Drop for ExexExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Interchange: identical broker role to HTEX, but counterparties are pool
// managers ("EXEX uses a hierarchical task distribution model, where the
// managers communicate with the interchange on behalf of workers").
// ---------------------------------------------------------------------------

struct PoolInfo {
    free: usize,
    workers: usize,
    last_seen: Instant,
    outstanding: HashMap<(u64, u32), ()>,
}

fn interchange_loop(shared: Arc<Shared>, ep: Endpoint) {
    let cfg = &shared.cfg;
    let mut pending: VecDeque<WireTask> = VecDeque::new();
    let mut pools: HashMap<Addr, PoolInfo> = HashMap::new();
    let mut draining: std::collections::HashSet<Addr> = std::collections::HashSet::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut last_hb_out = Instant::now();

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let msg = ep.recv_timeout(cfg.heartbeat_period / 2);
        let now = Instant::now();
        if let Ok(env) = msg {
            match crate::proto::decode::<ToInterchange>(&env.payload) {
                Ok(ToInterchange::Submit(task)) => pending.push_back(task),
                Ok(ToInterchange::SubmitBatch(tasks)) => pending.extend(tasks),
                Ok(ToInterchange::Register { capacity, .. }) => {
                    shared
                        .connected_workers
                        .fetch_add(capacity, Ordering::Relaxed);
                    pools.insert(
                        env.from.clone(),
                        PoolInfo {
                            free: capacity,
                            workers: capacity,
                            last_seen: now,
                            outstanding: HashMap::new(),
                        },
                    );
                }
                Ok(ToInterchange::Results(results)) => {
                    if let Some(p) = pools.get_mut(&env.from) {
                        for r in &results {
                            p.outstanding.remove(&(r.id, r.attempt));
                        }
                        p.free += results.len();
                        p.last_seen = now;
                    }
                    let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(results)));
                }
                Ok(ToInterchange::Heartbeat { name: _ }) => {
                    if let Some(p) = pools.get_mut(&env.from) {
                        p.last_seen = now;
                    }
                }
                Ok(ToInterchange::Retire { name }) => {
                    let addr = Addr::new(&name);
                    if pools.contains_key(&addr) {
                        draining.insert(addr.clone());
                        let _ = ep.send(&addr, encode(&ToManager::Shutdown));
                    }
                }
                Ok(ToInterchange::Deregister { name: _ }) => {
                    draining.remove(&env.from);
                    if let Some(p) = pools.remove(&env.from) {
                        shared
                            .connected_workers
                            .fetch_sub(p.workers, Ordering::Relaxed);
                    }
                }
                Ok(ToInterchange::Shutdown) => break,
                _ => {}
            }
        }

        if now.duration_since(last_hb_out) >= cfg.heartbeat_period {
            last_hb_out = now;
            for addr in pools.keys() {
                let _ = ep.send(addr, encode(&ToManager::Heartbeat));
            }
        }

        // Pool loss (MPI job died): report outstanding tasks.
        let lost: Vec<Addr> = pools
            .iter()
            .filter(|(_, p)| now.duration_since(p.last_seen) > cfg.heartbeat_threshold)
            .map(|(a, _)| a.clone())
            .collect();
        for addr in lost {
            let p = pools.remove(&addr).expect("present");
            draining.remove(&addr);
            shared
                .connected_workers
                .fetch_sub(p.workers, Ordering::Relaxed);
            let tasks: Vec<(u64, u32)> = p.outstanding.keys().copied().collect();
            let _ = ep.send(
                &shared.client_addr,
                encode(&ToClient::ManagerLost {
                    name: addr.to_string(),
                    tasks,
                }),
            );
        }

        while !pending.is_empty() {
            let candidates: Vec<Addr> = pools
                .iter()
                .filter(|(a, p)| p.free > 0 && !draining.contains(a))
                .map(|(a, _)| a.clone())
                .collect();
            if candidates.is_empty() {
                break;
            }
            let pick = &candidates[rng.random_range(0..candidates.len())];
            let p = pools.get_mut(pick).expect("candidate");
            let n = cfg.batch_size.min(p.free).min(pending.len());
            let batch: Vec<WireTask> = pending.drain(..n).collect();
            for t in &batch {
                p.outstanding.insert((t.id, t.attempt), ());
            }
            p.free -= n;
            if ep
                .send(pick, encode(&ToManager::Tasks(batch.clone())))
                .is_err()
            {
                let p = pools.get_mut(pick).expect("candidate");
                for t in &batch {
                    p.outstanding.remove(&(t.id, t.attempt));
                }
                for t in batch {
                    pending.push_front(t);
                }
                break;
            }
        }
    }

    for addr in pools.keys() {
        let _ = ep.send(addr, encode(&ToManager::Shutdown));
    }
}

// ---------------------------------------------------------------------------
// Pool: rank 0 bridges fabric <-> MPI; other ranks execute.
// ---------------------------------------------------------------------------

fn pool_manager_loop(shared: Arc<Shared>, rank: Rank, addr: Addr) {
    let cfg = &shared.cfg;
    let Ok(ep) = shared.fabric.bind(addr.clone()) else {
        rank.abort();
        return;
    };
    let n_workers = rank.size() - 1;
    let _ = ep.send(
        &shared.ix_addr,
        encode(&ToInterchange::Register {
            name: addr.to_string(),
            capacity: n_workers,
            held: vec![],
        }),
    );

    let mut idle: VecDeque<usize> = (1..rank.size()).collect();
    let mut backlog: VecDeque<WireTask> = VecDeque::new();
    let mut in_flight = 0usize;
    let mut last_hb = Instant::now();
    let mut draining = false;

    loop {
        // Fabric side (non-blocking-ish).
        match ep.recv_timeout(Duration::from_millis(1)) {
            Ok(env) => match crate::proto::decode::<ToManager>(&env.payload) {
                Ok(ToManager::Tasks(batch)) => backlog.extend(batch),
                // Pools share the client registry; advertisements are moot.
                // Cancels are advisory and EXEX ranks run lockstep waves,
                // so skipping one task would desync the wave — ignore.
                Ok(ToManager::Apps(_))
                | Ok(ToManager::Heartbeat)
                | Ok(ToManager::Cancel { .. }) => {}
                Ok(ToManager::Shutdown) => draining = true,
                Err(_) => {}
            },
            Err(nexus::RecvError::Timeout) => {}
            Err(nexus::RecvError::Closed) => {
                // Endpoint killed: the "node" died. MPI fate-sharing takes
                // the whole pool down.
                rank.abort();
                return;
            }
        }

        // Dispatch over "MPI".
        while let (Some(&w), false) = (idle.front(), backlog.is_empty()) {
            let task = backlog.pop_front().expect("non-empty");
            let payload = wire::to_bytes(&task).expect("task encodes");
            if rank.send(w, TAG_TASK, payload).is_err() {
                return; // pool aborted
            }
            idle.pop_front();
            in_flight += 1;
        }

        // Collect results (non-blocking poll via short timeout).
        loop {
            match rank.recv_timeout(ANY_SOURCE, Some(TAG_RESULT), Duration::from_micros(200)) {
                Ok(msg) => {
                    idle.push_back(msg.from);
                    in_flight -= 1;
                    if let Ok(result) = wire::from_bytes::<WireResult>(&msg.payload) {
                        if ep
                            .send(
                                &shared.ix_addr,
                                encode(&ToInterchange::Results(vec![result])),
                            )
                            .is_err()
                        {
                            // Interchange gone; nothing left to live for.
                            rank.abort();
                            return;
                        }
                    }
                }
                Err(minimpi::MpiError::Timeout) => break,
                Err(_) => return, // aborted
            }
        }

        if last_hb.elapsed() >= cfg.heartbeat_period {
            last_hb = Instant::now();
            let _ = ep.send(
                &shared.ix_addr,
                encode(&ToInterchange::Heartbeat {
                    name: addr.to_string(),
                }),
            );
        }

        if draining && backlog.is_empty() && in_flight == 0 {
            let _ = ep.send(
                &shared.ix_addr,
                encode(&ToInterchange::Deregister {
                    name: addr.to_string(),
                }),
            );
            for w in 1..rank.size() {
                let _ = rank.send(w, TAG_STOP, Vec::new());
            }
            rank.finalize();
            return;
        }
    }
}

fn worker_rank_loop(rank: Rank, registry: Arc<AppRegistry>) {
    let me = rank.rank();
    loop {
        let msg = match rank.recv(Some(0), None) {
            Ok(m) => m,
            Err(_) => return, // pool aborted
        };
        match msg.tag {
            TAG_TASK => {
                let Ok(task) = wire::from_bytes::<WireTask>(&msg.payload) else {
                    continue;
                };
                let result = kernel::execute(&registry, &task, &format!("rank-{me}"));
                let payload = wire::to_bytes(&result).expect("result encodes");
                if rank.send(0, TAG_RESULT, payload).is_err() {
                    return;
                }
            }
            TAG_STOP => {
                rank.finalize();
                return;
            }
            _ => {}
        }
    }
}

fn client_loop(shared: Arc<Shared>, ep: Arc<Endpoint>, ctx: ExecutorContext) {
    crate::proto::client_recv_loop(
        ep.as_ref(),
        &shared.stop,
        &shared.outstanding,
        &ctx,
        "MPI pool",
        None,
    );
}
