//! Builtin apps resolvable by name in spawned worker processes.
//!
//! Rust cannot ship closures over a socket the way Parsl pickles
//! functions, so a `parsl-worker` process resolves app *references*: the
//! interchange advertises `(id, name, signature)` ([`crate::proto::WireApp`])
//! and the worker binds its compiled-in body for `name` under the shipped
//! id. This mirrors Parsl's fast path of serializing functions by
//! reference — both sides must agree on the definition out of band.
//!
//! The table below covers the apps used by the TCP test suite and
//! benchmarks. A name the worker does not know simply stays unbound;
//! tasks referencing it fail with the registry's "app id not present"
//! error and surface to the DFK like any app failure.

use parsl_core::error::AppError;
use parsl_core::registry::ErasedAppFn;
use parsl_core::{AppArgs, TaskValue};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Wrap a typed body into the erased form, identically to the DFK's
/// `register_native` wrapper: decode args, catch panics, encode result.
fn erase<A, R>(body: impl Fn(A) -> Result<R, AppError> + Send + Sync + 'static) -> ErasedAppFn
where
    A: AppArgs,
    R: TaskValue,
{
    Arc::new(move |bytes: &[u8]| {
        let args = A::decode(bytes)?;
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| body(args)))
            .map_err(|p| AppError::Panic(panic_message(p)))??;
        wire::to_bytes(&out).map_err(|e| AppError::Serialization(e.to_string()))
    })
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A join body for element type `E`: decode `n` concatenated
/// `E`-encodings, re-encode as `Vec<E>` — the worker-side twin of the
/// closure `parsl_core::combinators::join_all` registers.
fn join_body<E: TaskValue>(n: usize) -> ErasedAppFn {
    Arc::new(move |bytes: &[u8]| {
        let mut de = wire::Deserializer::new(bytes);
        let mut out: Vec<E> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = serde::Deserialize::deserialize(&mut de)
                .map_err(|e: wire::Error| AppError::Serialization(e.to_string()))?;
            out.push(v);
        }
        if de.remaining() != 0 {
            return Err(AppError::Serialization("trailing bytes in join".into()));
        }
        wire::to_bytes(&out).map_err(|e| AppError::Serialization(e.to_string()))
    })
}

/// The DFK's combinators register dynamically named apps
/// (`_parsl_join_{n}`, `_parsl_barrier_{n}`) whose semantics are fully
/// determined by the advertised signature — `join[{elem}; {n}]` /
/// `barrier[{n}]`. Reconstruct the body from the signature for the
/// element types a worker can name statically.
fn resolve_combinator(name: &str, signature: &str) -> Option<ErasedAppFn> {
    if name.starts_with("_parsl_fmap_") {
        // A fused map chunk: `fmap[{inner_name}; {inner_sig}]`. Resolve
        // the inner body the same way any task would and wrap it in the
        // chunk-loop form the client used.
        let rest = signature.strip_prefix("fmap[")?.strip_suffix(']')?;
        let (inner_name, inner_sig) = rest.split_once("; ")?;
        let inner = resolve(inner_name, inner_sig)?;
        return Some(parsl_core::fusion::fused_map_body(inner));
    }
    if name.starts_with("_parsl_barrier_") {
        return Some(Arc::new(|_bytes: &[u8]| {
            wire::to_bytes(&()).map_err(|e| AppError::Serialization(e.to_string()))
        }));
    }
    if name.starts_with("_parsl_join_") {
        let inner = signature.strip_prefix("join[")?.strip_suffix(']')?;
        let (elem, n) = inner.rsplit_once("; ")?;
        let n: usize = n.parse().ok()?;
        return Some(match elem {
            "u8" => join_body::<u8>(n),
            "u16" => join_body::<u16>(n),
            "u32" => join_body::<u32>(n),
            "u64" => join_body::<u64>(n),
            "usize" => join_body::<usize>(n),
            "i8" => join_body::<i8>(n),
            "i16" => join_body::<i16>(n),
            "i32" => join_body::<i32>(n),
            "i64" => join_body::<i64>(n),
            "isize" => join_body::<isize>(n),
            "f32" => join_body::<f32>(n),
            "f64" => join_body::<f64>(n),
            "bool" => join_body::<bool>(n),
            "alloc::string::String" => join_body::<String>(n),
            "()" => join_body::<()>(n),
            _ => return None,
        });
    }
    None
}

/// Resolve a builtin body by app name and advertised signature; `None`
/// for names the worker does not know.
pub fn resolve(name: &str, signature: &str) -> Option<ErasedAppFn> {
    if let Some(f) = resolve_combinator(name, signature) {
        return Some(f);
    }
    Some(match name {
        // Identity; the benchmark workload (fig5).
        "noop" => erase(|(x,): (u64,)| Ok(x)),
        // Small arithmetic apps used by roundtrip tests.
        "double" => erase(|(x,): (u64,)| Ok(x * 2)),
        "add" => erase(|(a, b): (u64, u64)| Ok(a + b)),
        // Fan-out gate: a root task whose value unblocks dependents.
        "gate" => erase(|_: ()| Ok(0u64)),
        // Sleep then return; lets tests hold tasks in flight.
        "sleep_ms" => erase(|(ms, x): (u64, u64)| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(x)
        }),
        // Gated slow multiply for the SIGKILL fault test.
        "gated_sleep_mul" => erase(|(gate, ms, x): (u64, u64, u64)| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(gate + x * 3)
        }),
        // DAG node for the TCP-vs-inproc proptest; must match the
        // client-side registration byte for byte in behavior.
        "node" => erase(|(base, deps, fail): (u64, Vec<u64>, bool)| {
            if fail {
                return Err(AppError::msg("poisoned node"));
            }
            Ok(deps.into_iter().fold(base, u64::wrapping_add))
        }),
        // Deterministic failure, for error-propagation tests.
        "fail" => erase(|(_x,): (u64,)| Err::<u64, _>(AppError::msg("builtin failure"))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_bodies_match_client_semantics() {
        let noop = resolve("noop", "(u64)->u64").unwrap();
        let out = noop(&wire::to_bytes(&(7u64,)).unwrap()).unwrap();
        assert_eq!(wire::from_bytes::<u64>(&out).unwrap(), 7);

        let node = resolve("node", "(u64, Vec<u64>, bool)->u64").unwrap();
        let out = node(&wire::to_bytes(&(10u64, vec![1u64, 2], false)).unwrap()).unwrap();
        assert_eq!(wire::from_bytes::<u64>(&out).unwrap(), 13);
        let err = node(&wire::to_bytes(&(10u64, Vec::<u64>::new(), true)).unwrap()).unwrap_err();
        assert!(err.to_string().contains("poisoned node"));

        assert!(resolve("nonexistent", "(u64)->u64").is_none());

        // Combinators reconstruct from the advertised signature.
        let join = resolve("_parsl_join_2", "join[u64; 2]").unwrap();
        let mut args = wire::to_bytes(&5u64).unwrap();
        args.extend(wire::to_bytes(&6u64).unwrap());
        let out = join(&args).unwrap();
        assert_eq!(wire::from_bytes::<Vec<u64>>(&out).unwrap(), vec![5, 6]);
        assert!(resolve("_parsl_join_2", "join[some::Exotic; 2]").is_none());
        let barrier = resolve("_parsl_barrier_3", "barrier[3]").unwrap();
        assert!(barrier(&[]).is_ok());
    }

    #[test]
    fn fused_map_reconstructs_from_signature() {
        use parsl_core::fusion::FusedOutput;
        let fmap = resolve("_parsl_fmap_double", "fmap[double; (u64)->u64]").unwrap();
        let items: Vec<Vec<u8>> = (1..=3u64).map(|x| wire::to_bytes(&(x,)).unwrap()).collect();
        let out = fmap(&wire::to_bytes(&items).unwrap()).unwrap();
        let out: FusedOutput = wire::from_bytes(&out).unwrap();
        assert!(out.err.is_none());
        let vals: Vec<u64> = out
            .ok
            .iter()
            .map(|b| wire::from_bytes::<u64>(b).unwrap())
            .collect();
        assert_eq!(vals, vec![2, 4, 6]);

        // A failing inner element is reported positionally, like the
        // client-side body does.
        let fmap = resolve("_parsl_fmap_fail", "fmap[fail; (u64)->u64]").unwrap();
        let items: Vec<Vec<u8>> = vec![wire::to_bytes(&(1u64,)).unwrap()];
        let out: FusedOutput =
            wire::from_bytes(&fmap(&wire::to_bytes(&items).unwrap()).unwrap()).unwrap();
        assert!(out.ok.is_empty());
        assert!(out.err.is_some());

        // Unknown inner app → the fused app stays unbound.
        assert!(resolve("_parsl_fmap_mystery", "fmap[mystery; (u64)->u64]").is_none());
    }
}
