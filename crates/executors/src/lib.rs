//! `parsl-executors` — the paper's executor suite (§4.3).
//!
//! "As it appears infeasible to implement a single execution strategy that
//! will meet so many diverse requirements on such varied platforms, Parsl
//! provides a modular executor interface and a collection of executors
//! that are tuned for common execution patterns":
//!
//! | Executor | Paper target | This crate |
//! |---|---|---|
//! | [`ThreadPoolExecutor`] | single node | worker threads in-process |
//! | [`HtexExecutor`] | ≤2000 nodes, high throughput | interchange + per-node managers + workers over the `nexus` fabric, batching, prefetch, heartbeats, command channel |
//! | [`ExexExecutor`] | >1000 nodes | `minimpi` pools: rank 0 manages, other ranks work; fate-sharing faults |
//! | [`LlexExecutor`] | latency-sensitive | stateless relay, direct worker connections, no tracking |
//!
//! The [`model`] module holds the discrete-event versions of these
//! architectures used to regenerate the paper-scale experiments.

pub mod builtin;
pub mod exex;
pub mod htex;
pub mod kernel;
pub mod llex;
pub mod model;
pub mod proto;
pub mod threadpool;
pub mod worker;

pub use exex::{ExexConfig, ExexExecutor};
pub use htex::{default_worker_cmd, HtexConfig, HtexExecutor, TcpHtexOptions};
pub use llex::{LlexConfig, LlexExecutor};
pub use model::{CampaignResult, FrameworkModel, ScaleFailure};
pub use threadpool::ThreadPoolExecutor;
pub use worker::{run_worker, ManagerCfg, WorkerOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::prelude::*;
    use std::time::Duration;

    fn quick_htex(workers_per_node: usize, nodes: usize) -> HtexExecutor {
        HtexExecutor::new(HtexConfig {
            workers_per_node,
            nodes_per_block: nodes,
            init_blocks: 1,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(150),
            ..Default::default()
        })
    }

    #[test]
    fn htex_executes_tasks() {
        let dfk = DataFlowKernel::builder()
            .executor(quick_htex(2, 2))
            .build()
            .unwrap();
        let double = dfk.python_app("double", |x: u64| x * 2);
        let futs: Vec<_> = (0..50u64).map(|i| parsl_core::call!(double, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), 2 * i as u64);
        }
        dfk.shutdown();
    }

    #[test]
    fn htex_dependency_chains_cross_nodes() {
        let dfk = DataFlowKernel::builder()
            .executor(quick_htex(2, 3))
            .build()
            .unwrap();
        let inc = dfk.python_app("inc", |x: u64| x + 1);
        let mut f = parsl_core::call!(inc, 0u64);
        for _ in 0..20 {
            f = parsl_core::call!(inc, f);
        }
        assert_eq!(f.result().unwrap(), 21);
        dfk.shutdown();
    }

    #[test]
    fn htex_worker_count_reflects_nodes() {
        let htex = quick_htex(4, 2);
        let dfk = DataFlowKernel::builder()
            .executor_arc(std::sync::Arc::new(htex))
            .build()
            .unwrap();
        // 1 block × 2 nodes × 4 workers; registration is async, poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let ex = dfk.executor("htex").unwrap();
        while ex.connected_workers() < 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(ex.connected_workers(), 8);
        dfk.shutdown();
    }

    #[test]
    fn htex_manager_loss_is_detected_and_retried() {
        let htex = std::sync::Arc::new(quick_htex(1, 1));
        let dfk = DataFlowKernel::builder()
            .executor_arc(htex.clone())
            .retries(2)
            .build()
            .unwrap();
        let slow = dfk.python_app("slow", |x: u64| {
            std::thread::sleep(Duration::from_millis(400));
            x
        });
        let f = parsl_core::call!(slow, 5u64);
        // Let the task land on the (only) node, then kill that node.
        std::thread::sleep(Duration::from_millis(100));
        let nodes = htex.nodes();
        assert_eq!(nodes.len(), 1);
        htex.kill_node(&nodes[0]);
        // Bring up a replacement so the retry has somewhere to run.
        htex.add_node();
        assert_eq!(f.result().unwrap(), 5);
        dfk.shutdown();
    }

    #[test]
    fn htex_command_channel_reports_outstanding() {
        use crate::proto::{Command, CommandReply};
        let htex = std::sync::Arc::new(quick_htex(2, 1));
        let dfk = DataFlowKernel::builder()
            .executor_arc(htex.clone())
            .build()
            .unwrap();
        let noop = dfk.python_app("noop", |x: u8| x);
        let _ = parsl_core::call!(noop, 1u8).result().unwrap();
        let reply = htex
            .command(Command::OutstandingInfo, Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply, CommandReply::Outstanding(0));
        let reply = htex
            .command(Command::ConnectedWorkers, Duration::from_secs(2))
            .unwrap();
        assert!(matches!(reply, CommandReply::Workers(n) if n >= 2));
        dfk.shutdown();
    }

    #[test]
    fn llex_executes_tasks() {
        let dfk = DataFlowKernel::builder()
            .executor(LlexExecutor::new(LlexConfig {
                workers: 3,
                ..Default::default()
            }))
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: i64| x);
        let futs: Vec<_> = (0..30i64).map(|i| parsl_core::call!(id, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), i as i64);
        }
        dfk.shutdown();
    }

    #[test]
    fn llex_lost_worker_loses_task_but_walltime_recovers_it() {
        let llex = std::sync::Arc::new(LlexExecutor::new(LlexConfig {
            workers: 1,
            ..Default::default()
        }));
        let dfk = DataFlowKernel::builder()
            .executor_arc(llex.clone())
            .retries(1)
            .build()
            .unwrap();
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let flaky_env = dfk.python_app_cfg(
            "task",
            AppOptions {
                walltime: Some(Duration::from_millis(300)),
                ..Default::default()
            },
            |x: u64| -> Result<u64, AppError> {
                let n = CALLS.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    // First execution: sleep forever — will be "lost".
                    std::thread::sleep(Duration::from_secs(60));
                }
                Ok(x)
            },
        );
        let f = parsl_core::call!(flaky_env, 9u64);
        std::thread::sleep(Duration::from_millis(50));
        // Add a second worker so the retry can run while the first worker
        // is stuck sleeping (LLEX itself never notices).
        llex.add_worker();
        assert_eq!(f.result().unwrap(), 9);
        dfk.shutdown();
    }

    #[test]
    fn exex_executes_tasks() {
        let dfk = DataFlowKernel::builder()
            .executor(ExexExecutor::new(ExexConfig {
                ranks_per_pool: 4,
                init_pools: 2,
                heartbeat_period: Duration::from_millis(30),
                heartbeat_threshold: Duration::from_millis(150),
                ..Default::default()
            }))
            .build()
            .unwrap();
        let sq = dfk.python_app("sq", |x: u64| x * x);
        let futs: Vec<_> = (0..40u64).map(|i| parsl_core::call!(sq, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), (i * i) as u64);
        }
        dfk.shutdown();
    }

    #[test]
    fn exex_pool_crash_takes_out_whole_pool_and_retries_elsewhere() {
        let exex = std::sync::Arc::new(ExexExecutor::new(ExexConfig {
            ranks_per_pool: 3,
            init_pools: 1,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(200),
            ..Default::default()
        }));
        let dfk = DataFlowKernel::builder()
            .executor_arc(exex.clone())
            .retries(2)
            .build()
            .unwrap();
        let slow = dfk.python_app("slow", |x: u64| {
            std::thread::sleep(Duration::from_millis(400));
            x + 1
        });
        let f = parsl_core::call!(slow, 1u64);
        std::thread::sleep(Duration::from_millis(100));
        let pools = exex.pools();
        assert_eq!(pools.len(), 1);
        exex.kill_pool(&pools[0]);
        exex.add_pool();
        assert_eq!(f.result().unwrap(), 2);
        dfk.shutdown();
    }

    #[test]
    fn multi_executor_config_spreads_tasks() {
        // §3.5: "multi-site" execution via multiple executors.
        let dfk = DataFlowKernel::builder()
            .executor(ThreadPoolExecutor::with_label("site-a", 2))
            .executor(ThreadPoolExecutor::with_label("site-b", 2))
            .seed(11)
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: u32| x);
        let futs: Vec<_> = (0..64u32).map(|i| parsl_core::call!(id, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), i as u32);
        }
        dfk.shutdown();
    }
}
