//! The common execution kernel (§4.3).
//!
//! "All executors share a common execution kernel that is responsible for
//! deserializing the task (i.e., the App and its input arguments) and
//! executing the task in a sandboxed Python environment." Here the kernel
//! resolves the app id against the shared registry and applies the erased
//! function to the argument bytes; panic isolation ("sandboxing") is built
//! into the erased wrapper.

use crate::proto::{WireResult, WireTask};
use parsl_core::error::AppError;
use parsl_core::registry::{AppId, AppRegistry};

/// Execute one task and package the result for the wire.
pub fn execute(registry: &AppRegistry, task: &WireTask, worker: &str) -> WireResult {
    let outcome = match registry.get(AppId(task.app_id)) {
        Some(app) => (app.func)(&task.args),
        None => Err(AppError::Serialization(format!(
            "app id {} not present in worker registry",
            task.app_id
        ))),
    };
    WireResult {
        id: task.id,
        attempt: task.attempt,
        outcome,
        worker: worker.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::registry::AppOptions;
    use parsl_core::types::AppKind;
    use std::sync::Arc;

    #[test]
    fn kernel_runs_registered_app() {
        let reg = AppRegistry::new();
        let app = reg.register(
            "triple",
            AppKind::Native,
            "(u32)->u32",
            Arc::new(|args| {
                let (x,): (u32,) =
                    wire::from_bytes(args).map_err(|e| AppError::Serialization(e.to_string()))?;
                wire::to_bytes(&(x * 3)).map_err(|e| AppError::Serialization(e.to_string()))
            }),
            AppOptions::default(),
        );
        let task = WireTask {
            id: 1,
            attempt: 0,
            app_id: app.id.0,
            tenant: 0,
            items: 1,
            args: wire::to_bytes(&(14u32,)).unwrap(),
        };
        let result = execute(&reg, &task, "w0");
        let v: u32 = wire::from_bytes(&result.outcome.unwrap()).unwrap();
        assert_eq!(v, 42);
        assert_eq!(result.worker, "w0");
        assert_eq!(result.attempt, 0);
    }

    #[test]
    fn unknown_app_is_reported() {
        let reg = AppRegistry::new();
        let task = WireTask {
            id: 1,
            attempt: 0,
            app_id: 999,
            tenant: 0,
            items: 1,
            args: vec![],
        };
        let result = execute(&reg, &task, "w0");
        assert!(matches!(result.outcome, Err(AppError::Serialization(_))));
    }
}
