//! The High Throughput Executor (§4.3.1).
//!
//! Three components, mirroring Figure 2a:
//!
//! - the **executor client** (this struct) submits tasks and receives
//!   results on behalf of the DataFlowKernel;
//! - the **interchange** brokers between client and managers: it queues
//!   tasks, matches them to managers with advertised capacity using
//!   randomized selection for fairness, relays result batches, answers a
//!   synchronous command channel, and watches heartbeats;
//! - **managers** (pilot agents, one per node) register capacity
//!   (`workers_per_node + prefetch`), receive task batches, feed a pool of
//!   worker threads, and batch results back.
//!
//! Fault tolerance follows the paper: managers and the interchange
//! exchange periodic heartbeats. A manager that loses the interchange
//! exits immediately "to avoid resource wastage"; when the interchange
//! loses a manager with outstanding tasks, it reports them to the client
//! so the DFK can retry.

use crate::kernel;
use crate::proto::{
    encode, Command, CommandReply, ToClient, ToInterchange, ToManager, WireResult, WireTask,
};
use crossbeam::channel::{bounded, unbounded, Sender};
use nexus::{Addr, Endpoint, Fabric};
use parking_lot::Mutex;
use parsl_core::executor::{BlockScaling, Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::AppRegistry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// HTEX tuning knobs.
#[derive(Debug, Clone)]
pub struct HtexConfig {
    /// Executor label.
    pub label: String,
    /// Worker threads per simulated node.
    pub workers_per_node: usize,
    /// Extra task slots a manager advertises beyond its workers, so tasks
    /// are prefetched while workers are busy ("configurable batching and
    /// prefetching of tasks to minimize communication overheads").
    pub prefetch: usize,
    /// Largest task batch the interchange sends a manager at once.
    pub batch_size: usize,
    /// Heartbeat period between managers and interchange.
    pub heartbeat_period: Duration,
    /// Silence longer than this marks the counterpart lost.
    pub heartbeat_threshold: Duration,
    /// Nodes added per scaling block (provider blocks, §4.2.3).
    pub nodes_per_block: usize,
    /// Elasticity floor, in blocks.
    pub min_blocks: usize,
    /// Elasticity ceiling, in blocks.
    pub max_blocks: usize,
    /// Nodes brought up at start (`init_blocks × nodes_per_block`).
    pub init_blocks: usize,
    /// RNG seed for the interchange's randomized manager selection.
    pub seed: u64,
}

impl Default for HtexConfig {
    fn default() -> Self {
        HtexConfig {
            label: "htex".into(),
            workers_per_node: 4,
            prefetch: 4,
            batch_size: 8,
            heartbeat_period: Duration::from_millis(100),
            heartbeat_threshold: Duration::from_millis(400),
            nodes_per_block: 1,
            min_blocks: 0,
            max_blocks: usize::MAX,
            init_blocks: 1,
            seed: 0,
        }
    }
}

struct ManagerInfo {
    free: usize,
    workers: usize,
    last_seen: Instant,
    outstanding: HashMap<(u64, u32), ()>,
}

struct Shared {
    cfg: HtexConfig,
    fabric: Fabric,
    ix_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected_workers: AtomicUsize,
    next_node: AtomicU64,
    stop: AtomicBool,
    /// Reply slot for the synchronous command channel.
    command_reply: Mutex<Option<Sender<CommandReply>>>,
    /// Live node addresses, newest last (graceful scale-in pops the back).
    nodes: Mutex<Vec<Addr>>,
    blocks: AtomicUsize,
}

/// The High Throughput Executor. See module docs.
pub struct HtexExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<Endpoint>>>,
    ctx: Mutex<Option<ExecutorContext>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl HtexExecutor {
    /// Build an executor over its own private fabric.
    pub fn new(cfg: HtexConfig) -> Self {
        Self::on_fabric(cfg, Fabric::new())
    }

    /// Build over an externally supplied fabric (tests inject latency and
    /// faults this way).
    pub fn on_fabric(cfg: HtexConfig, fabric: Fabric) -> Self {
        let ix_addr = Addr::new(format!("{}:ix", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        HtexExecutor {
            shared: Arc::new(Shared {
                cfg,
                fabric,
                ix_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected_workers: AtomicUsize::new(0),
                next_node: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                command_reply: Mutex::new(None),
                nodes: Mutex::new(Vec::new()),
                blocks: AtomicUsize::new(0),
            }),
            client_ep: Mutex::new(None),
            ctx: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// The fabric this executor communicates over (for fault injection).
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// Bring up one more simulated node (manager + workers). Returns its
    /// fabric address.
    pub fn add_node(&self) -> Addr {
        let shared = Arc::clone(&self.shared);
        let registry = self
            .ctx
            .lock()
            .as_ref()
            .map(|c| Arc::clone(&c.registry))
            .expect("add_node before start");
        let n = shared.next_node.fetch_add(1, Ordering::Relaxed);
        let addr = Addr::new(format!("{}:mgr-{n}", shared.cfg.label));
        let mgr_addr = addr.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{}-mgr-{n}", shared.cfg.label))
            .spawn(move || manager_loop(shared, registry, mgr_addr))
            .expect("spawn manager");
        self.threads.lock().push(handle);
        self.shared.nodes.lock().push(addr.clone());
        addr
    }

    /// Gracefully retire the most recently added node. The retirement is
    /// routed through the interchange so no task batch can cross the
    /// shutdown on the wire.
    pub fn remove_node(&self) -> bool {
        let Some(addr) = self.shared.nodes.lock().pop() else {
            return false;
        };
        if let Some(ep) = self.client_ep.lock().as_ref() {
            let _ = ep.send(
                &self.shared.ix_addr,
                encode(&ToInterchange::Retire {
                    name: addr.to_string(),
                }),
            );
        }
        true
    }

    /// Fault injection: abruptly kill a node's manager (no deregistration,
    /// no result flush). The interchange notices via missed heartbeats.
    pub fn kill_node(&self, addr: &Addr) {
        self.shared.fabric.kill(addr);
        self.shared.nodes.lock().retain(|a| a != addr);
    }

    /// Addresses of live nodes.
    pub fn nodes(&self) -> Vec<Addr> {
        self.shared.nodes.lock().clone()
    }

    /// Synchronous administrative command (§4.3.1). Times out after `wait`.
    pub fn command(&self, cmd: Command, wait: Duration) -> Result<CommandReply, ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let (tx, rx) = bounded(1);
        {
            let mut slot = self.shared.command_reply.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("command already in flight".into()));
            }
            *slot = Some(tx);
        }
        ep.send(&self.shared.ix_addr, encode(&ToInterchange::Command(cmd)))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let reply = rx
            .recv_timeout(wait)
            .map_err(|_| ExecutorError::Comm("command timed out".into()));
        *self.shared.command_reply.lock() = None;
        reply
    }
}

impl Executor for HtexExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        {
            let mut slot = self.ctx.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("already started".into()));
            }
            *slot = Some(ctx.clone());
        }
        let ix_ep = self
            .shared
            .fabric
            .bind(self.shared.ix_addr.clone())
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let client_ep = Arc::new(
            self.shared
                .fabric
                .bind(self.shared.client_addr.clone())
                .map_err(|e| ExecutorError::Comm(e.to_string()))?,
        );
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let ix_handle = std::thread::Builder::new()
            .name(format!("{}-ix", shared.cfg.label))
            .spawn(move || interchange_loop(shared, ix_ep))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let client_handle = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || client_loop(shared, client_ep, ctx))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        self.threads.lock().extend([ix_handle, client_handle]);

        for _ in 0..self.shared.cfg.init_blocks {
            self.scale_out(1);
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask::from_spec(&task);
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.ix_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    /// Native batching: the whole batch crosses the fabric as
    /// `SubmitBatch` frames — one message per `max_frame_bytes` of tasks
    /// instead of one per task (§4.3.1 "configurable batching ... to
    /// minimize communication overheads").
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        crate::proto::send_task_batch(
            &ep,
            &self.shared.ix_addr,
            &self.shared.outstanding,
            self.shared.fabric.max_frame_bytes(),
            &tasks,
        )
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected_workers.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.ix_addr, encode(&ToInterchange::Shutdown));
        }
        self.ctx.lock().take();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn scaling(&self) -> Option<&dyn BlockScaling> {
        Some(self)
    }
}

impl BlockScaling for HtexExecutor {
    fn block_count(&self) -> usize {
        self.shared.blocks.load(Ordering::Relaxed)
    }

    fn workers_per_block(&self) -> usize {
        self.shared.cfg.nodes_per_block * self.shared.cfg.workers_per_node
    }

    fn scale_out(&self, n: usize) -> usize {
        let mut added = 0;
        for _ in 0..n {
            if self.block_count() >= self.shared.cfg.max_blocks {
                break;
            }
            for _ in 0..self.shared.cfg.nodes_per_block {
                self.add_node();
            }
            self.shared.blocks.fetch_add(1, Ordering::Relaxed);
            added += 1;
        }
        added
    }

    fn scale_in(&self, n: usize) -> usize {
        let mut removed = 0;
        for _ in 0..n {
            if self.block_count() <= self.shared.cfg.min_blocks {
                break;
            }
            for _ in 0..self.shared.cfg.nodes_per_block {
                self.remove_node();
            }
            self.shared.blocks.fetch_sub(1, Ordering::Relaxed);
            removed += 1;
        }
        removed
    }

    fn min_blocks(&self) -> usize {
        self.shared.cfg.min_blocks
    }

    fn max_blocks(&self) -> usize {
        self.shared.cfg.max_blocks
    }
}

impl Drop for HtexExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Interchange
// ---------------------------------------------------------------------------

fn interchange_loop(shared: Arc<Shared>, ep: Endpoint) {
    let cfg = &shared.cfg;
    let mut pending: VecDeque<WireTask> = VecDeque::new();
    let mut managers: HashMap<Addr, ManagerInfo> = HashMap::new();
    let mut blacklist: HashSet<Addr> = HashSet::new();
    let mut draining: HashSet<Addr> = HashSet::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut last_hb_out = Instant::now();

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let msg = ep.recv_timeout(cfg.heartbeat_period / 2);
        let now = Instant::now();

        if let Ok(env) = msg {
            match crate::proto::decode::<ToInterchange>(&env.payload) {
                Ok(ToInterchange::Submit(task)) => {
                    pending.push_back(task);
                }
                Ok(ToInterchange::SubmitBatch(tasks)) => {
                    pending.extend(tasks);
                }
                Ok(ToInterchange::Register { name: _, capacity }) => {
                    let workers = capacity.saturating_sub(cfg.prefetch);
                    shared
                        .connected_workers
                        .fetch_add(workers, Ordering::Relaxed);
                    managers.insert(
                        env.from.clone(),
                        ManagerInfo {
                            free: capacity,
                            workers,
                            last_seen: now,
                            outstanding: HashMap::new(),
                        },
                    );
                }
                Ok(ToInterchange::Capacity { name: _, free }) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        m.free = free;
                        m.last_seen = now;
                    }
                }
                Ok(ToInterchange::Results(results)) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        for r in &results {
                            m.outstanding.remove(&(r.id, r.attempt));
                        }
                        m.free += results.len();
                        m.last_seen = now;
                    }
                    let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(results)));
                }
                Ok(ToInterchange::Heartbeat { name: _ }) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        m.last_seen = now;
                    }
                }
                Ok(ToInterchange::Retire { name }) => {
                    let addr = Addr::new(&name);
                    if managers.contains_key(&addr) {
                        // Stop dispatching first, then tell the manager to
                        // drain; same-pair FIFO means any batch sent before
                        // this instant arrives before the shutdown.
                        draining.insert(addr.clone());
                        let _ = ep.send(&addr, encode(&ToManager::Shutdown));
                    }
                }
                Ok(ToInterchange::Deregister { name: _ }) => {
                    draining.remove(&env.from);
                    if let Some(m) = managers.remove(&env.from) {
                        shared
                            .connected_workers
                            .fetch_sub(m.workers, Ordering::Relaxed);
                        // A graceful manager has already flushed results;
                        // anything still marked outstanding is reported.
                        if !m.outstanding.is_empty() {
                            let tasks: Vec<(u64, u32)> = m.outstanding.keys().copied().collect();
                            let _ = ep.send(
                                &shared.client_addr,
                                encode(&ToClient::ManagerLost {
                                    name: env.from.to_string(),
                                    tasks,
                                }),
                            );
                        }
                    }
                }
                Ok(ToInterchange::Command(cmd)) => {
                    let reply = match cmd {
                        Command::OutstandingInfo => {
                            let queued = pending.len();
                            let running: usize =
                                managers.values().map(|m| m.outstanding.len()).sum();
                            CommandReply::Outstanding(queued + running)
                        }
                        Command::ConnectedWorkers => {
                            CommandReply::Workers(shared.connected_workers.load(Ordering::Relaxed))
                        }
                        Command::Blacklist(name) => {
                            blacklist.insert(Addr::new(name));
                            CommandReply::Ack
                        }
                        Command::ShutdownExecutor => {
                            let _ = ep.send(
                                &env.from,
                                encode(&ToClient::CommandReply(CommandReply::Ack)),
                            );
                            break;
                        }
                    };
                    let _ = ep.send(&env.from, encode(&ToClient::CommandReply(reply)));
                }
                Ok(ToInterchange::Shutdown) => break,
                Err(_) => { /* corrupt frame; drop, like a real broker */ }
            }
        }

        // Heartbeats out to managers.
        if now.duration_since(last_hb_out) >= cfg.heartbeat_period {
            last_hb_out = now;
            for addr in managers.keys() {
                let _ = ep.send(addr, encode(&ToManager::Heartbeat));
            }
        }

        // Detect lost managers (§4.3.1) and surface their tasks.
        let lost: Vec<Addr> = managers
            .iter()
            .filter(|(_, m)| now.duration_since(m.last_seen) > cfg.heartbeat_threshold)
            .map(|(a, _)| a.clone())
            .collect();
        for addr in lost {
            let m = managers.remove(&addr).expect("present");
            draining.remove(&addr);
            shared
                .connected_workers
                .fetch_sub(m.workers, Ordering::Relaxed);
            let tasks: Vec<(u64, u32)> = m.outstanding.keys().copied().collect();
            let _ = ep.send(
                &shared.client_addr,
                encode(&ToClient::ManagerLost {
                    name: addr.to_string(),
                    tasks,
                }),
            );
        }

        // Dispatch: match queued tasks to managers with capacity, picking
        // managers at random for fairness.
        while !pending.is_empty() {
            let candidates: Vec<Addr> = managers
                .iter()
                .filter(|(a, m)| m.free > 0 && !blacklist.contains(a) && !draining.contains(a))
                .map(|(a, _)| a.clone())
                .collect();
            if candidates.is_empty() {
                break;
            }
            let pick = &candidates[rng.random_range(0..candidates.len())];
            let m = managers.get_mut(pick).expect("candidate exists");
            let n = cfg.batch_size.min(m.free).min(pending.len());
            let batch: Vec<WireTask> = pending.drain(..n).collect();
            for t in &batch {
                m.outstanding.insert((t.id, t.attempt), ());
            }
            m.free -= n;
            if ep
                .send(pick, encode(&ToManager::Tasks(batch.clone())))
                .is_err()
            {
                // Manager's endpoint died between heartbeat checks; requeue
                // and let the loss path clean up.
                let m = managers.get_mut(pick).expect("candidate exists");
                for t in &batch {
                    m.outstanding.remove(&(t.id, t.attempt));
                }
                for t in batch {
                    pending.push_front(t);
                }
                break;
            }
        }
    }

    // Shutdown: stop every manager.
    for addr in managers.keys() {
        let _ = ep.send(addr, encode(&ToManager::Shutdown));
    }
}

// ---------------------------------------------------------------------------
// Manager (one per node) and its workers
// ---------------------------------------------------------------------------

fn manager_loop(shared: Arc<Shared>, registry: Arc<AppRegistry>, addr: Addr) {
    let cfg = &shared.cfg;
    let Ok(ep) = shared.fabric.bind(addr.clone()) else {
        return;
    };

    // Worker pool: shared task queue, common result funnel.
    let (task_tx, task_rx) = unbounded::<WireTask>();
    let (result_tx, result_rx) = unbounded::<WireResult>();
    let mut worker_handles = Vec::with_capacity(cfg.workers_per_node);
    for w in 0..cfg.workers_per_node {
        let task_rx = task_rx.clone();
        let result_tx = result_tx.clone();
        let registry = Arc::clone(&registry);
        let name = format!("{addr}:w{w}");
        worker_handles.push(
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    while let Ok(task) = task_rx.recv() {
                        let result = kernel::execute(&registry, &task, &name);
                        if result_tx.send(result).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }
    drop(result_tx); // manager holds only the receiver side

    let capacity = cfg.workers_per_node + cfg.prefetch;
    let _ = ep.send(
        &shared.ix_addr,
        encode(&ToInterchange::Register {
            name: addr.to_string(),
            capacity,
        }),
    );

    let ticker = crossbeam::channel::tick(cfg.heartbeat_period);
    let mut result_buf: Vec<WireResult> = Vec::new();
    let mut last_ix_contact = Instant::now();
    let mut draining = false;
    // Tasks accepted minus results returned: workers may be mid-task even
    // when every queue is empty, and a draining manager must wait for them.
    let mut in_flight: usize = 0;

    loop {
        crossbeam::channel::select! {
            recv(ep.receiver()) -> env => {
                let Ok(env) = env else { return }; // endpoint killed
                last_ix_contact = Instant::now();
                match crate::proto::decode::<ToManager>(&env.payload) {
                    Ok(ToManager::Tasks(batch)) => {
                        in_flight += batch.len();
                        for t in batch {
                            if task_tx.send(t).is_err() {
                                return;
                            }
                        }
                    }
                    Ok(ToManager::Heartbeat) => {}
                    Ok(ToManager::Shutdown) => {
                        draining = true;
                    }
                    Err(_) => {}
                }
            }
            recv(result_rx) -> res => {
                if let Ok(res) = res {
                    in_flight -= 1;
                    result_buf.push(res);
                    // Batch aggressively under load (drain whatever has
                    // already accumulated), but never sit on results when
                    // the funnel is empty — idle latency must not pay the
                    // batching timer.
                    while result_buf.len() < cfg.batch_size {
                        match result_rx.try_recv() {
                            Ok(more) => {
                                in_flight -= 1;
                                result_buf.push(more);
                            }
                            Err(_) => break,
                        }
                    }
                    flush_results(&ep, &shared.ix_addr, &addr, &mut result_buf);
                }
            }
            recv(ticker) -> _ => {
                flush_results(&ep, &shared.ix_addr, &addr, &mut result_buf);
                let _ = ep.send(
                    &shared.ix_addr,
                    encode(&ToInterchange::Heartbeat { name: addr.to_string() }),
                );
                // "Managers, upon losing contact with the interchange, exit
                // immediately to avoid resource wastage."
                if last_ix_contact.elapsed() > cfg.heartbeat_threshold {
                    return;
                }
            }
        }
        // Deregister only after every accepted task has returned its
        // result and the fabric inbox holds nothing new.
        if draining && in_flight == 0 && ep.queued() == 0 {
            flush_results(&ep, &shared.ix_addr, &addr, &mut result_buf);
            let _ = ep.send(
                &shared.ix_addr,
                encode(&ToInterchange::Deregister {
                    name: addr.to_string(),
                }),
            );
            drop(task_tx);
            for h in worker_handles {
                let _ = h.join();
            }
            return;
        }
    }
}

fn flush_results(ep: &Endpoint, ix: &Addr, _addr: &Addr, buf: &mut Vec<WireResult>) {
    if buf.is_empty() {
        return;
    }
    let batch = std::mem::take(buf);
    let _ = ep.send(ix, encode(&ToInterchange::Results(batch)));
}

// ---------------------------------------------------------------------------
// Client-side receive loop
// ---------------------------------------------------------------------------

fn client_loop(shared: Arc<Shared>, ep: Arc<Endpoint>, ctx: ExecutorContext) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(env) = ep.recv_timeout(Duration::from_millis(50)) else {
            continue;
        };
        match crate::proto::decode::<ToClient>(&env.payload) {
            Ok(ToClient::Results(results)) => {
                // Forward the whole frame as one completion batch — the
                // batching the interchange/manager did on the wire is
                // preserved through the DFK's collector.
                shared
                    .outstanding
                    .fetch_sub(results.len(), Ordering::Relaxed);
                let outcomes = crate::proto::outcomes_from_results(results);
                if !outcomes.is_empty() && ctx.completions.send(outcomes).is_err() {
                    return;
                }
            }
            Ok(ToClient::ManagerLost { name, tasks }) => {
                shared.outstanding.fetch_sub(tasks.len(), Ordering::Relaxed);
                let outcomes = crate::proto::outcomes_from_lost(
                    tasks,
                    &format!("manager {name} lost (heartbeat expired)"),
                );
                if !outcomes.is_empty() && ctx.completions.send(outcomes).is_err() {
                    return;
                }
            }
            Ok(ToClient::CommandReply(reply)) => {
                if let Some(tx) = shared.command_reply.lock().take() {
                    let _ = tx.send(reply);
                }
            }
            Err(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parsl_core::registry::AppOptions;
    use parsl_core::types::{AppKind, ResourceSpec, TaskId};

    /// A batch submitted through one `submit_batch` call comes back
    /// complete, and the outstanding gauge returns to zero.
    #[test]
    fn submit_batch_roundtrip() {
        let registry = AppRegistry::new();
        let app = registry.register(
            "double",
            AppKind::Native,
            "(u64)->u64",
            Arc::new(|args| {
                let (x,): (u64,) = wire::from_bytes(args)
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))?;
                wire::to_bytes(&(x * 2))
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))
            }),
            AppOptions::default(),
        );
        let (tx, rx) = crossbeam::channel::unbounded();
        let htex = HtexExecutor::new(HtexConfig {
            workers_per_node: 2,
            nodes_per_block: 2,
            ..Default::default()
        });
        htex.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();

        let n = 64u64;
        let batch: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId(i),
                app: Arc::clone(&app),
                args: Bytes::from(wire::to_bytes(&(i,)).unwrap()),
                resources: ResourceSpec::default(),
                attempt: 0,
            })
            .collect();
        htex.submit_batch(batch).unwrap();

        let mut got = std::collections::HashMap::new();
        while got.len() < n as usize {
            let outcomes = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("batch completes");
            for outcome in outcomes {
                let v: u64 = wire::from_bytes(&outcome.result.unwrap()).unwrap();
                got.insert(outcome.id.0, v);
            }
        }
        for i in 0..n {
            assert_eq!(got.get(&i), Some(&(i * 2)), "task {i}");
        }
        assert_eq!(htex.outstanding(), 0);
        htex.shutdown();
    }
}
