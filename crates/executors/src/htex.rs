//! The High Throughput Executor (§4.3.1).
//!
//! Three components, mirroring Figure 2a:
//!
//! - the **executor client** (this struct) submits tasks and receives
//!   results on behalf of the DataFlowKernel;
//! - the **interchange** brokers between client and managers: it queues
//!   tasks, matches them to managers with advertised capacity using
//!   randomized selection for fairness, relays result batches, answers a
//!   synchronous command channel, and watches heartbeats;
//! - **managers** (pilot agents, one per node) register capacity
//!   (`workers_per_node + prefetch`), receive task batches, feed a pool of
//!   worker threads, and batch results back.
//!
//! Fault tolerance follows the paper: managers and the interchange
//! exchange periodic heartbeats. A manager that loses the interchange
//! exits immediately "to avoid resource wastage"; when the interchange
//! loses a manager with outstanding tasks, it reports them to the client
//! so the DFK can retry.
//!
//! The topology runs over either message plane (see [`nexus::transport`]):
//! the in-proc fabric (threads, deterministic fault injection) or real
//! loopback/remote TCP ([`HtexExecutor::tcp`]), where managers are
//! `parsl-worker` *processes* spawned through the `providers` launcher
//! path and connected back via [`nexus::TcpSpoke`].

use crate::proto::{
    encode, Command, CommandReply, ToClient, ToInterchange, ToManager, WireApp, WireResult,
    WireTask,
};
use crate::worker::{manager_loop, ManagerCfg};
use crossbeam::channel::{bounded, Sender};
use nexus::{Addr, Fabric, Port, SpokeConfig, TcpHub, TcpSpoke, Transport};
use parking_lot::Mutex;
use parsl_core::error::AppError;
use parsl_core::executor::{BlockScaling, Executor, ExecutorContext, ExecutorError, TaskSpec};
use parsl_core::registry::{AppId, AppRegistry};
use parsl_core::types::TaskId;
use parsl_providers::{Channel, Launcher, LocalChannel, SingleLauncher};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// HTEX tuning knobs.
#[derive(Debug, Clone)]
pub struct HtexConfig {
    /// Executor label.
    pub label: String,
    /// Worker threads per simulated node.
    pub workers_per_node: usize,
    /// Extra task slots a manager advertises beyond its workers, so tasks
    /// are prefetched while workers are busy ("configurable batching and
    /// prefetching of tasks to minimize communication overheads").
    pub prefetch: usize,
    /// Largest task batch the interchange sends a manager at once.
    pub batch_size: usize,
    /// Heartbeat period between managers and interchange.
    pub heartbeat_period: Duration,
    /// Silence longer than this marks the counterpart lost.
    pub heartbeat_threshold: Duration,
    /// Nodes added per scaling block (provider blocks, §4.2.3).
    pub nodes_per_block: usize,
    /// Elasticity floor, in blocks.
    pub min_blocks: usize,
    /// Elasticity ceiling, in blocks.
    pub max_blocks: usize,
    /// Nodes brought up at start (`init_blocks × nodes_per_block`).
    pub init_blocks: usize,
    /// RNG seed for the interchange's randomized manager selection.
    pub seed: u64,
}

impl Default for HtexConfig {
    fn default() -> Self {
        HtexConfig {
            label: "htex".into(),
            workers_per_node: 4,
            prefetch: 4,
            batch_size: 8,
            heartbeat_period: Duration::from_millis(100),
            heartbeat_threshold: Duration::from_millis(400),
            nodes_per_block: 1,
            min_blocks: 0,
            max_blocks: usize::MAX,
            init_blocks: 1,
            seed: 0,
        }
    }
}

struct ManagerInfo {
    free: usize,
    workers: usize,
    last_seen: Instant,
    outstanding: HashMap<(u64, u32), ()>,
    /// App ids already advertised to this manager (remote workers bind
    /// builtins by name on first sight; in-proc managers ignore these).
    advertised: HashSet<u64>,
}

/// How an [`HtexExecutor::tcp`] deployment spawns and reaches workers.
pub struct TcpHtexOptions {
    /// Argv prefix that starts one worker process; the executor appends
    /// its `--connect/--name/...` flags. Defaults to the `PARSL_WORKER_BIN`
    /// environment variable, falling back to a `parsl-worker` binary next
    /// to the current executable.
    pub worker_cmd: Vec<String>,
    /// Launcher wrapping the worker command (single/srun/mpiexec), the
    /// provider path from §4.2.
    pub launcher: Arc<dyn Launcher>,
    /// Channel wrapping the launched command (local/ssh).
    pub channel: Arc<dyn Channel>,
    /// Bind address for the hub listener (`"127.0.0.1:0"` = ephemeral
    /// loopback port).
    pub bind: String,
    /// How long a disconnected worker keeps retrying before it exits.
    pub reconnect_window: Duration,
}

impl Default for TcpHtexOptions {
    fn default() -> Self {
        TcpHtexOptions {
            worker_cmd: default_worker_cmd(),
            launcher: Arc::new(SingleLauncher),
            channel: Arc::new(LocalChannel),
            bind: "127.0.0.1:0".into(),
            reconnect_window: Duration::from_secs(10),
        }
    }
}

/// Locate the `parsl-worker` binary: `PARSL_WORKER_BIN` wins, else a
/// sibling of the current executable (stepping out of `deps/` for test
/// binaries), else bare `parsl-worker` resolved via `PATH`.
pub fn default_worker_cmd() -> Vec<String> {
    if let Ok(p) = std::env::var("PARSL_WORKER_BIN") {
        return vec![p];
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent().map(|p| p.to_path_buf());
        if let Some(d) = &dir {
            if d.file_name().is_some_and(|n| n == "deps") {
                dir = d.parent().map(|p| p.to_path_buf());
            }
        }
        if let Some(d) = dir {
            let candidate = d.join("parsl-worker");
            if candidate.exists() {
                return vec![candidate.to_string_lossy().into_owned()];
            }
        }
    }
    vec!["parsl-worker".into()]
}

struct TcpTopology {
    hub: TcpHub,
    opts: TcpHtexOptions,
    /// Spawned worker processes by manager address, for SIGKILL fault
    /// injection and shutdown reaping.
    children: Mutex<HashMap<Addr, Child>>,
}

/// The message plane the topology runs over.
enum Topology {
    /// In-proc fabric: managers are threads, faults are injected.
    InProc(Fabric),
    /// Real TCP: managers are spawned `parsl-worker` processes.
    Tcp(TcpTopology),
}

struct Shared {
    cfg: HtexConfig,
    topo: Topology,
    ix_addr: Addr,
    client_addr: Addr,
    outstanding: AtomicUsize,
    connected_workers: AtomicUsize,
    next_node: AtomicU64,
    stop: AtomicBool,
    /// Reply slot for the synchronous command channel.
    command_reply: Mutex<Option<Sender<CommandReply>>>,
    /// Live node addresses, newest last (graceful scale-in pops the back).
    nodes: Mutex<Vec<Addr>>,
    blocks: AtomicUsize,
    /// Nodes retired but not yet deregistered: incremented when a `Retire`
    /// is sent, decremented by the interchange when the manager leaves its
    /// draining set (graceful deregister or heartbeat loss). Drives
    /// [`BlockScaling::draining_blocks`] and the providers' drain probes.
    draining_nodes: AtomicUsize,
}

impl Shared {
    fn max_frame_bytes(&self) -> usize {
        match &self.topo {
            Topology::InProc(f) => f.max_frame_bytes(),
            Topology::Tcp(t) => t.hub.max_frame_bytes(),
        }
    }
}

/// The High Throughput Executor. See module docs.
pub struct HtexExecutor {
    shared: Arc<Shared>,
    client_ep: Mutex<Option<Arc<dyn Port>>>,
    ctx: Mutex<Option<ExecutorContext>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl HtexExecutor {
    /// Build an executor over its own private fabric.
    pub fn new(cfg: HtexConfig) -> Self {
        Self::on_fabric(cfg, Fabric::new())
    }

    /// Build over an externally supplied fabric (tests inject latency and
    /// faults this way).
    pub fn on_fabric(cfg: HtexConfig, fabric: Fabric) -> Self {
        Self::with_topology(cfg, Topology::InProc(fabric))
    }

    /// Build over real TCP: the interchange listens on a [`TcpHub`] and
    /// every `add_node` spawns a `parsl-worker` process that connects
    /// back. Fails if the hub socket cannot bind.
    pub fn tcp(cfg: HtexConfig, opts: TcpHtexOptions) -> std::io::Result<Self> {
        let hub = TcpHub::bind(&opts.bind)?;
        Ok(Self::with_topology(
            cfg,
            Topology::Tcp(TcpTopology {
                hub,
                opts,
                children: Mutex::new(HashMap::new()),
            }),
        ))
    }

    fn with_topology(cfg: HtexConfig, topo: Topology) -> Self {
        let ix_addr = Addr::new(format!("{}:ix", cfg.label));
        let client_addr = Addr::new(format!("{}:client", cfg.label));
        HtexExecutor {
            shared: Arc::new(Shared {
                cfg,
                topo,
                ix_addr,
                client_addr,
                outstanding: AtomicUsize::new(0),
                connected_workers: AtomicUsize::new(0),
                next_node: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                command_reply: Mutex::new(None),
                nodes: Mutex::new(Vec::new()),
                blocks: AtomicUsize::new(0),
                draining_nodes: AtomicUsize::new(0),
            }),
            client_ep: Mutex::new(None),
            ctx: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// The fabric this executor communicates over (for fault injection).
    /// Panics for a TCP-transport executor, which has no fabric — use
    /// [`HtexExecutor::drop_node_conn`] / [`HtexExecutor::kill_node`]
    /// there instead.
    pub fn fabric(&self) -> &Fabric {
        match &self.shared.topo {
            Topology::InProc(f) => f,
            Topology::Tcp(_) => panic!("fabric() on a TCP-transport HTEX"),
        }
    }

    /// Bring up one more node (manager + workers): a thread in-proc, a
    /// spawned `parsl-worker` process over TCP. Returns its address.
    pub fn add_node(&self) -> Addr {
        let shared = Arc::clone(&self.shared);
        let n = shared.next_node.fetch_add(1, Ordering::Relaxed);
        let addr = Addr::new(format!("{}:mgr-{n}", shared.cfg.label));
        match &self.shared.topo {
            Topology::InProc(fabric) => {
                let registry = self
                    .ctx
                    .lock()
                    .as_ref()
                    .map(|c| Arc::clone(&c.registry))
                    .expect("add_node before start");
                let ep = fabric.bind(addr.clone()).expect("manager address free");
                let mgr_cfg = ManagerCfg {
                    workers: shared.cfg.workers_per_node,
                    prefetch: shared.cfg.prefetch,
                    batch_size: shared.cfg.batch_size,
                    heartbeat_period: shared.cfg.heartbeat_period,
                    heartbeat_threshold: shared.cfg.heartbeat_threshold,
                    reconnect: false,
                };
                let ix_addr = shared.ix_addr.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("{}-mgr-{n}", shared.cfg.label))
                    .spawn(move || manager_loop(Box::new(ep), registry, ix_addr, mgr_cfg))
                    .expect("spawn manager");
                self.threads.lock().push(handle);
            }
            Topology::Tcp(t) => {
                let child = spawn_worker_process(&self.shared, t, &addr)
                    .expect("spawn parsl-worker process");
                t.children.lock().insert(addr.clone(), child);
            }
        }
        self.shared.nodes.lock().push(addr.clone());
        addr
    }

    /// Gracefully retire the most recently added node. The retirement is
    /// routed through the interchange so no task batch can cross the
    /// shutdown on the wire.
    pub fn remove_node(&self) -> bool {
        let Some(addr) = self.shared.nodes.lock().pop() else {
            return false;
        };
        let sent = self.client_ep.lock().as_ref().is_some_and(|ep| {
            ep.send(
                &self.shared.ix_addr,
                encode(&ToInterchange::Retire {
                    name: addr.to_string(),
                }),
            )
            .is_ok()
        });
        if sent {
            self.shared.draining_nodes.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Nodes that have been retired but are still finishing held tasks.
    /// A provider pool's drain probe reads this to decide when a drained
    /// block's job can actually be released.
    pub fn draining_nodes(&self) -> usize {
        self.shared.draining_nodes.load(Ordering::Relaxed)
    }

    /// Fault injection: abruptly kill a node's manager (no deregistration,
    /// no result flush). In-proc the endpoint is killed; over TCP the
    /// worker *process* receives SIGKILL. The interchange notices via
    /// missed heartbeats either way.
    pub fn kill_node(&self, addr: &Addr) {
        match &self.shared.topo {
            Topology::InProc(fabric) => fabric.kill(addr),
            Topology::Tcp(t) => {
                if let Some(mut child) = t.children.lock().remove(addr) {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        self.shared.nodes.lock().retain(|a| a != addr);
    }

    /// Fault injection (TCP only): sever a worker's connection without
    /// touching its process. The worker's spoke reconnects and the manager
    /// re-registers; no tasks should be lost. Returns false in-proc or if
    /// no such connection exists.
    pub fn drop_node_conn(&self, addr: &Addr) -> bool {
        match &self.shared.topo {
            Topology::InProc(_) => false,
            Topology::Tcp(t) => t.hub.drop_conn(addr),
        }
    }

    /// Addresses of live nodes.
    pub fn nodes(&self) -> Vec<Addr> {
        self.shared.nodes.lock().clone()
    }

    /// Synchronous administrative command (§4.3.1). Times out after `wait`.
    pub fn command(&self, cmd: Command, wait: Duration) -> Result<CommandReply, ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let (tx, rx) = bounded(1);
        {
            let mut slot = self.shared.command_reply.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("command already in flight".into()));
            }
            *slot = Some(tx);
        }
        ep.send(&self.shared.ix_addr, encode(&ToInterchange::Command(cmd)))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        let reply = rx
            .recv_timeout(wait)
            .map_err(|_| ExecutorError::Comm("command timed out".into()));
        *self.shared.command_reply.lock() = None;
        reply
    }
}

impl Executor for HtexExecutor {
    fn label(&self) -> &str {
        &self.shared.cfg.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        {
            let mut slot = self.ctx.lock();
            if slot.is_some() {
                return Err(ExecutorError::Rejected("already started".into()));
            }
            *slot = Some(ctx.clone());
        }
        // Attach the interchange to the plane; over TCP the client also
        // crosses a real socket (a spoke into the hub), so the submit
        // path pays genuine per-frame transport costs.
        let (ix_ep, client_ep): (Box<dyn Port>, Arc<dyn Port>) = match &self.shared.topo {
            Topology::InProc(fabric) => (
                Box::new(
                    fabric
                        .bind(self.shared.ix_addr.clone())
                        .map_err(|e| ExecutorError::Comm(e.to_string()))?,
                ),
                Arc::new(
                    fabric
                        .bind(self.shared.client_addr.clone())
                        .map_err(|e| ExecutorError::Comm(e.to_string()))?,
                ),
            ),
            Topology::Tcp(t) => (
                t.hub
                    .attach(self.shared.ix_addr.clone())
                    .map_err(|e| ExecutorError::Comm(e.to_string()))?,
                Arc::new(
                    TcpSpoke::connect(
                        t.hub.local_addr(),
                        self.shared.client_addr.clone(),
                        SpokeConfig::default(),
                    )
                    .map_err(|e| ExecutorError::Comm(e.to_string()))?,
                ),
            ),
        };
        *self.client_ep.lock() = Some(Arc::clone(&client_ep));

        let shared = Arc::clone(&self.shared);
        let registry = Arc::clone(&ctx.registry);
        let ix_handle = std::thread::Builder::new()
            .name(format!("{}-ix", shared.cfg.label))
            .spawn(move || interchange_loop(shared, ix_ep, registry))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        let shared = Arc::clone(&self.shared);
        let client_handle = std::thread::Builder::new()
            .name(format!("{}-client", self.shared.cfg.label))
            .spawn(move || client_loop(shared, client_ep, ctx))
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;

        self.threads.lock().extend([ix_handle, client_handle]);

        for _ in 0..self.shared.cfg.init_blocks {
            self.scale_out(1);
        }
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        let wire_task = WireTask::from_spec(&task);
        self.shared.outstanding.fetch_add(1, Ordering::Relaxed);
        ep.send(
            &self.shared.ix_addr,
            encode(&ToInterchange::Submit(wire_task)),
        )
        .map_err(|e| {
            self.shared.outstanding.fetch_sub(1, Ordering::Relaxed);
            ExecutorError::Comm(e.to_string())
        })
    }

    /// Native batching: the whole batch crosses the fabric as
    /// `SubmitBatch` frames — one message per `max_frame_bytes` of tasks
    /// instead of one per task (§4.3.1 "configurable batching ... to
    /// minimize communication overheads").
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ep = self
            .client_ep
            .lock()
            .clone()
            .ok_or(ExecutorError::NotRunning)?;
        crate::proto::send_task_batch(
            ep.as_ref(),
            &self.shared.ix_addr,
            &self.shared.outstanding,
            self.shared.max_frame_bytes(),
            &tasks,
        )
    }

    fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Relaxed)
    }

    /// Best-effort: drop the attempt from the interchange's queue, or
    /// forward the cancel to the manager holding it. Either way a
    /// (possibly synthesized) result flows back, so the outstanding gauge
    /// and manager accounting settle normally.
    fn cancel(&self, id: TaskId, attempt: u32) {
        if let Some(ep) = self.client_ep.lock().as_ref() {
            let _ = ep.send(
                &self.shared.ix_addr,
                encode(&ToInterchange::Cancel { id: id.0, attempt }),
            );
        }
    }

    fn connected_workers(&self) -> usize {
        self.shared.connected_workers.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(ep) = self.client_ep.lock().take() {
            let _ = ep.send(&self.shared.ix_addr, encode(&ToInterchange::Shutdown));
        }
        self.ctx.lock().take();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Reap spawned worker processes: the interchange's Shutdown fan-out
        // makes them drain and exit; anything still alive after a grace
        // period is killed so no orphans outlive the executor.
        if let Topology::Tcp(t) = &self.shared.topo {
            let mut children: Vec<(Addr, Child)> = t.children.lock().drain().collect();
            let deadline = Instant::now() + Duration::from_secs(5);
            for (_, child) in &mut children {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            t.hub.shutdown();
        }
    }

    fn scaling(&self) -> Option<&dyn BlockScaling> {
        Some(self)
    }
}

impl BlockScaling for HtexExecutor {
    fn block_count(&self) -> usize {
        self.shared.blocks.load(Ordering::Relaxed)
    }

    fn workers_per_block(&self) -> usize {
        self.shared.cfg.nodes_per_block * self.shared.cfg.workers_per_node
    }

    fn scale_out(&self, n: usize) -> usize {
        let mut added = 0;
        for _ in 0..n {
            if self.block_count() >= self.shared.cfg.max_blocks {
                break;
            }
            for _ in 0..self.shared.cfg.nodes_per_block {
                self.add_node();
            }
            self.shared.blocks.fetch_add(1, Ordering::Relaxed);
            added += 1;
        }
        added
    }

    fn scale_in(&self, n: usize) -> usize {
        let mut removed = 0;
        for _ in 0..n {
            if self.block_count() <= self.shared.cfg.min_blocks {
                break;
            }
            for _ in 0..self.shared.cfg.nodes_per_block {
                self.remove_node();
            }
            self.shared.blocks.fetch_sub(1, Ordering::Relaxed);
            removed += 1;
        }
        removed
    }

    fn min_blocks(&self) -> usize {
        self.shared.cfg.min_blocks
    }

    fn max_blocks(&self) -> usize {
        self.shared.cfg.max_blocks
    }

    /// HTEX retirement is already graceful (`Retire` → manager finishes
    /// held work → `Deregister`), so draining is scale-in plus the
    /// draining-nodes gauge the snapshot and providers read.
    fn drain(&self, n: usize) -> usize {
        self.scale_in(n)
    }

    fn draining_blocks(&self) -> usize {
        self.shared
            .draining_nodes
            .load(Ordering::Relaxed)
            .div_ceil(self.shared.cfg.nodes_per_block.max(1))
    }
}

impl Drop for HtexExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Interchange
// ---------------------------------------------------------------------------

/// One retiring node finished draining (deregistered, was lost, or never
/// existed); saturating so a stray decrement can't wrap the gauge.
fn node_drained(shared: &Shared) {
    let _ = shared
        .draining_nodes
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
}

fn interchange_loop(shared: Arc<Shared>, ep: Box<dyn Port>, registry: Arc<AppRegistry>) {
    let cfg = &shared.cfg;
    let mut pending: VecDeque<WireTask> = VecDeque::new();
    let mut managers: HashMap<Addr, ManagerInfo> = HashMap::new();
    let mut blacklist: HashSet<Addr> = HashSet::new();
    let mut draining: HashSet<Addr> = HashSet::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut last_hb_out = Instant::now();

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let msg = ep.recv_timeout(cfg.heartbeat_period / 2);
        let now = Instant::now();

        if let Ok(env) = msg {
            match crate::proto::decode::<ToInterchange>(&env.payload) {
                Ok(ToInterchange::Submit(task)) => {
                    pending.push_back(task);
                }
                Ok(ToInterchange::SubmitBatch(tasks)) => {
                    pending.extend(tasks);
                }
                Ok(ToInterchange::Register {
                    name: _,
                    capacity,
                    held,
                }) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        // Re-register after a link drop: keep the
                        // accounting, reconcile against what the manager
                        // actually still holds, and report anything that
                        // died in the gap as lost so the DFK retries it.
                        let held: HashSet<(u64, u32)> = held.into_iter().collect();
                        let vanished: Vec<(u64, u32)> = m
                            .outstanding
                            .keys()
                            .filter(|k| !held.contains(k))
                            .copied()
                            .collect();
                        for k in &vanished {
                            m.outstanding.remove(k);
                        }
                        m.free = capacity.saturating_sub(m.outstanding.len());
                        m.last_seen = now;
                        if !vanished.is_empty() {
                            let _ = ep.send(
                                &shared.client_addr,
                                encode(&ToClient::ManagerLost {
                                    name: env.from.to_string(),
                                    tasks: vanished,
                                }),
                            );
                        }
                    } else {
                        let workers = capacity.saturating_sub(cfg.prefetch);
                        shared
                            .connected_workers
                            .fetch_add(workers, Ordering::Relaxed);
                        managers.insert(
                            env.from.clone(),
                            ManagerInfo {
                                free: capacity,
                                workers,
                                last_seen: now,
                                outstanding: HashMap::new(),
                                advertised: HashSet::new(),
                            },
                        );
                    }
                }
                Ok(ToInterchange::Capacity { name: _, free }) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        m.free = free;
                        m.last_seen = now;
                    }
                }
                Ok(ToInterchange::Results(results)) => {
                    // Forward only results this interchange still accounts
                    // for. A manager declared lost (its tasks already
                    // reported and retried) may reconnect and flush stale
                    // results; forwarding those would double-finalize
                    // attempts and corrupt the client's outstanding gauge.
                    if let Some(m) = managers.get_mut(&env.from) {
                        let known: Vec<_> = results
                            .into_iter()
                            .filter(|r| m.outstanding.remove(&(r.id, r.attempt)).is_some())
                            .collect();
                        m.free += known.len();
                        m.last_seen = now;
                        if !known.is_empty() {
                            let _ = ep.send(&shared.client_addr, encode(&ToClient::Results(known)));
                        }
                    }
                }
                Ok(ToInterchange::Heartbeat { name: _ }) => {
                    if let Some(m) = managers.get_mut(&env.from) {
                        m.last_seen = now;
                    }
                }
                Ok(ToInterchange::Retire { name }) => {
                    let addr = Addr::new(&name);
                    if managers.contains_key(&addr) {
                        // Stop dispatching first, then tell the manager to
                        // drain; same-pair FIFO means any batch sent before
                        // this instant arrives before the shutdown.
                        draining.insert(addr.clone());
                        let _ = ep.send(&addr, encode(&ToManager::Shutdown));
                    } else {
                        // Manager already gone (or never registered): the
                        // drain is trivially complete.
                        node_drained(&shared);
                    }
                }
                Ok(ToInterchange::Cancel { id, attempt }) => {
                    if let Some(pos) = pending
                        .iter()
                        .position(|t| t.id == id && t.attempt == attempt)
                    {
                        // Never dispatched: drop it here and synthesize a
                        // failed result so the client's outstanding gauge
                        // settles (the DFK's attempt filter discards it).
                        pending.remove(pos);
                        let _ = ep.send(
                            &shared.client_addr,
                            encode(&ToClient::Results(vec![WireResult {
                                id,
                                attempt,
                                outcome: Err(AppError::msg("cancelled before dispatch")),
                                worker: String::new(),
                            }])),
                        );
                    } else if let Some(addr) = managers
                        .iter()
                        .find(|(_, m)| m.outstanding.contains_key(&(id, attempt)))
                        .map(|(a, _)| a.clone())
                    {
                        let _ = ep.send(&addr, encode(&ToManager::Cancel { id, attempt }));
                    }
                }
                Ok(ToInterchange::Deregister { name: _ }) => {
                    if draining.remove(&env.from) {
                        node_drained(&shared);
                    }
                    if let Some(m) = managers.remove(&env.from) {
                        shared
                            .connected_workers
                            .fetch_sub(m.workers, Ordering::Relaxed);
                        // A graceful manager has already flushed results;
                        // anything still marked outstanding is reported.
                        if !m.outstanding.is_empty() {
                            let tasks: Vec<(u64, u32)> = m.outstanding.keys().copied().collect();
                            let _ = ep.send(
                                &shared.client_addr,
                                encode(&ToClient::ManagerLost {
                                    name: env.from.to_string(),
                                    tasks,
                                }),
                            );
                        }
                    }
                }
                Ok(ToInterchange::Command(cmd)) => {
                    let reply = match cmd {
                        Command::OutstandingInfo => {
                            let queued = pending.len();
                            let running: usize =
                                managers.values().map(|m| m.outstanding.len()).sum();
                            CommandReply::Outstanding(queued + running)
                        }
                        Command::ConnectedWorkers => {
                            CommandReply::Workers(shared.connected_workers.load(Ordering::Relaxed))
                        }
                        Command::Blacklist(name) => {
                            blacklist.insert(Addr::new(name));
                            CommandReply::Ack
                        }
                        Command::ShutdownExecutor => {
                            let _ = ep.send(
                                &env.from,
                                encode(&ToClient::CommandReply(CommandReply::Ack)),
                            );
                            break;
                        }
                    };
                    let _ = ep.send(&env.from, encode(&ToClient::CommandReply(reply)));
                }
                Ok(ToInterchange::Shutdown) => break,
                Err(_) => { /* corrupt frame; drop, like a real broker */ }
            }
        }

        // Heartbeats out to managers.
        if now.duration_since(last_hb_out) >= cfg.heartbeat_period {
            last_hb_out = now;
            for addr in managers.keys() {
                let _ = ep.send(addr, encode(&ToManager::Heartbeat));
            }
        }

        // Detect lost managers (§4.3.1) and surface their tasks.
        let lost: Vec<Addr> = managers
            .iter()
            .filter(|(_, m)| now.duration_since(m.last_seen) > cfg.heartbeat_threshold)
            .map(|(a, _)| a.clone())
            .collect();
        for addr in lost {
            let m = managers.remove(&addr).expect("present");
            if draining.remove(&addr) {
                node_drained(&shared);
            }
            shared
                .connected_workers
                .fetch_sub(m.workers, Ordering::Relaxed);
            let tasks: Vec<(u64, u32)> = m.outstanding.keys().copied().collect();
            let _ = ep.send(
                &shared.client_addr,
                encode(&ToClient::ManagerLost {
                    name: addr.to_string(),
                    tasks,
                }),
            );
        }

        // Dispatch: match queued tasks to managers with capacity, picking
        // managers at random for fairness.
        while !pending.is_empty() {
            let candidates: Vec<Addr> = managers
                .iter()
                .filter(|(a, m)| m.free > 0 && !blacklist.contains(a) && !draining.contains(a))
                .map(|(a, _)| a.clone())
                .collect();
            if candidates.is_empty() {
                break;
            }
            let pick = &candidates[rng.random_range(0..candidates.len())];
            let m = managers.get_mut(pick).expect("candidate exists");
            let n = cfg.batch_size.min(m.free).min(pending.len());
            let batch: Vec<WireTask> = pending.drain(..n).collect();

            // Advertise apps this manager hasn't seen before their tasks:
            // same-pair FIFO guarantees the worker binds the ids first.
            let mut new_app_ids: Vec<u64> = batch
                .iter()
                .map(|t| t.app_id)
                .filter(|id| !m.advertised.contains(id))
                .collect();
            new_app_ids.sort_unstable();
            new_app_ids.dedup();
            let new_apps: Vec<WireApp> = new_app_ids
                .iter()
                .filter_map(|id| registry.get(AppId(*id)))
                .map(|app| WireApp {
                    id: app.id.0,
                    name: app.name.to_string(),
                    signature: app.signature.to_string(),
                })
                .collect();
            if !new_apps.is_empty() && ep.send(pick, encode(&ToManager::Apps(new_apps))).is_err() {
                for t in batch.into_iter().rev() {
                    pending.push_front(t);
                }
                break;
            }
            let m = managers.get_mut(pick).expect("candidate exists");
            m.advertised.extend(new_app_ids);

            for t in &batch {
                m.outstanding.insert((t.id, t.attempt), ());
            }
            m.free -= n;
            if ep
                .send(pick, encode(&ToManager::Tasks(batch.clone())))
                .is_err()
            {
                // Manager's endpoint died between heartbeat checks; requeue
                // and let the loss path clean up.
                let m = managers.get_mut(pick).expect("candidate exists");
                for t in &batch {
                    m.outstanding.remove(&(t.id, t.attempt));
                }
                for t in batch {
                    pending.push_front(t);
                }
                break;
            }
        }
    }

    // Shutdown: stop every manager.
    for addr in managers.keys() {
        let _ = ep.send(addr, encode(&ToManager::Shutdown));
    }
}

// ---------------------------------------------------------------------------
// Worker process spawning (TCP topology)
// ---------------------------------------------------------------------------

/// Render and spawn one `parsl-worker` process through the provider path:
/// the raw command is wrapped by the configured [`Launcher`] and
/// [`Channel`] (identity for local single-node runs, `srun`/`ssh` shapes
/// for clusters), then executed under `sh -c "exec ..."` so signals sent
/// to the child hit the worker itself.
fn spawn_worker_process(
    shared: &Shared,
    topo: &TcpTopology,
    addr: &Addr,
) -> std::io::Result<Child> {
    let cfg = &shared.cfg;
    let connect = match &shared.topo {
        Topology::Tcp(t) => t.hub.local_addr(),
        Topology::InProc(_) => unreachable!("spawn_worker_process on in-proc topology"),
    };
    let mut argv: Vec<String> = topo.opts.worker_cmd.clone();
    argv.extend([
        "--connect".into(),
        connect.to_string(),
        "--name".into(),
        addr.to_string(),
        "--ix".into(),
        shared.ix_addr.to_string(),
        "--workers".into(),
        cfg.workers_per_node.to_string(),
        "--prefetch".into(),
        cfg.prefetch.to_string(),
        "--batch".into(),
        cfg.batch_size.to_string(),
        "--heartbeat-ms".into(),
        cfg.heartbeat_period.as_millis().to_string(),
        "--threshold-ms".into(),
        cfg.heartbeat_threshold.as_millis().to_string(),
        "--reconnect-ms".into(),
        topo.opts.reconnect_window.as_millis().to_string(),
    ]);
    let raw = argv
        .iter()
        .map(|a| shell_quote(a))
        .collect::<Vec<_>>()
        .join(" ");
    let launched = topo.opts.launcher.wrap(&raw, 1, cfg.workers_per_node);
    let command = topo.opts.channel.wrap(&launched);
    std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("exec {command}"))
        .spawn()
}

/// Quote one argv element for `sh -c`.
fn shell_quote(s: &str) -> String {
    if !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"-_./:=".contains(&b))
    {
        s.to_string()
    } else {
        format!("'{}'", s.replace('\'', r"'\''"))
    }
}

// ---------------------------------------------------------------------------
// Client-side receive loop
// ---------------------------------------------------------------------------

fn client_loop(shared: Arc<Shared>, ep: Arc<dyn Port>, ctx: ExecutorContext) {
    crate::proto::client_recv_loop(
        ep.as_ref(),
        &shared.stop,
        &shared.outstanding,
        &ctx,
        "manager",
        Some(&shared.command_reply),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parsl_core::registry::AppOptions;
    use parsl_core::types::{AppKind, ResourceSpec, TaskId};

    /// A batch submitted through one `submit_batch` call comes back
    /// complete, and the outstanding gauge returns to zero.
    #[test]
    fn submit_batch_roundtrip() {
        let registry = AppRegistry::new();
        let app = registry.register(
            "double",
            AppKind::Native,
            "(u64)->u64",
            Arc::new(|args| {
                let (x,): (u64,) = wire::from_bytes(args)
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))?;
                wire::to_bytes(&(x * 2))
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))
            }),
            AppOptions::default(),
        );
        let (tx, rx) = crossbeam::channel::unbounded();
        let htex = HtexExecutor::new(HtexConfig {
            workers_per_node: 2,
            nodes_per_block: 2,
            ..Default::default()
        });
        htex.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();

        let n = 64u64;
        let batch: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId(i),
                app: Arc::clone(&app),
                args: Bytes::from(wire::to_bytes(&(i,)).unwrap()),
                resources: ResourceSpec::default(),
                attempt: 0,
                tenant: parsl_core::types::TenantId::DEFAULT,
                items: 1,
            })
            .collect();
        htex.submit_batch(batch).unwrap();

        let mut got = std::collections::HashMap::new();
        while got.len() < n as usize {
            let outcomes = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("batch completes");
            for outcome in outcomes {
                let v: u64 = wire::from_bytes(&outcome.result.unwrap()).unwrap();
                got.insert(outcome.id.0, v);
            }
        }
        for i in 0..n {
            assert_eq!(got.get(&i), Some(&(i * 2)), "task {i}");
        }
        assert_eq!(htex.outstanding(), 0);
        htex.shutdown();
    }

    /// Register an app that sleeps `ms` then echoes its id.
    fn sleep_app(registry: &AppRegistry) -> Arc<parsl_core::registry::RegisteredApp> {
        registry.register(
            "sleepy",
            AppKind::Native,
            "(u64,u64)->u64",
            Arc::new(|args| {
                let (id, ms): (u64, u64) = wire::from_bytes(args)
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))?;
                std::thread::sleep(Duration::from_millis(ms));
                wire::to_bytes(&id)
                    .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))
            }),
            AppOptions::default(),
        )
    }

    fn spec(app: &Arc<parsl_core::registry::RegisteredApp>, id: u64, ms: u64) -> TaskSpec {
        TaskSpec {
            id: TaskId(id),
            app: Arc::clone(app),
            args: Bytes::from(wire::to_bytes(&(id, ms)).unwrap()),
            resources: ResourceSpec::default(),
            attempt: 0,
            tenant: parsl_core::types::TenantId::DEFAULT,
            items: 1,
        }
    }

    /// Draining a node mid-burst loses nothing: every task still returns
    /// Ok exactly once, the retired manager finishes its held work and
    /// deregisters (`draining_nodes` settles back to 0), and capacity
    /// drops to the surviving node.
    #[test]
    fn drain_under_load_loses_no_tasks() {
        let registry = AppRegistry::new();
        let app = sleep_app(&registry);
        let (tx, rx) = crossbeam::channel::unbounded();
        let htex = HtexExecutor::new(HtexConfig {
            workers_per_node: 1,
            prefetch: 1,
            init_blocks: 2,
            nodes_per_block: 1,
            ..Default::default()
        });
        htex.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();

        let n = 8u64;
        htex.submit_batch((0..n).map(|i| spec(&app, i, 40)).collect())
            .unwrap();
        // Let the first wave land on both managers, then retire one while
        // it still holds work.
        std::thread::sleep(Duration::from_millis(60));
        assert!(htex.remove_node());
        assert_eq!(htex.draining_nodes(), 1);

        let mut got = std::collections::HashMap::new();
        while got.len() < n as usize {
            for outcome in rx.recv_timeout(Duration::from_secs(10)).expect("completes") {
                let v: u64 =
                    wire::from_bytes(&outcome.result.expect("drain must not fail tasks")).unwrap();
                assert!(got.insert(outcome.id.0, v).is_none(), "duplicate result");
            }
        }
        for i in 0..n {
            assert_eq!(got.get(&i), Some(&i), "task {i} lost");
        }
        assert_eq!(htex.outstanding(), 0);

        // The retired manager deregisters once its held tasks finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (htex.draining_nodes() > 0 || htex.connected_workers() > 1)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(htex.draining_nodes(), 0, "drain never completed");
        assert_eq!(htex.connected_workers(), 1, "retired node still registered");
        htex.shutdown();
    }

    /// Cancellation settles both halves of the protocol: a task still
    /// queued at the interchange comes back "cancelled before dispatch",
    /// a task already held by a manager is skipped by the worker
    /// ("cancelled"), and an uncancelled running task completes normally.
    /// Either way the outstanding gauge returns to zero.
    #[test]
    fn cancel_settles_queued_and_held_tasks() {
        let registry = AppRegistry::new();
        let app = sleep_app(&registry);
        let (tx, rx) = crossbeam::channel::unbounded();
        // One manager advertising two slots (1 worker + 1 prefetch): the
        // blocker runs, t2 is held, t3 stays queued at the interchange.
        let htex = HtexExecutor::new(HtexConfig {
            workers_per_node: 1,
            prefetch: 1,
            init_blocks: 1,
            nodes_per_block: 1,
            ..Default::default()
        });
        htex.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();

        htex.submit_batch(vec![
            spec(&app, 1, 300), // blocker: occupies the only worker
            spec(&app, 2, 0),   // held by the manager behind the blocker
            spec(&app, 3, 0),   // never leaves the interchange queue
        ])
        .unwrap();
        // Wait for dispatch so the blocker is running and t2 is held.
        std::thread::sleep(Duration::from_millis(100));
        htex.cancel(TaskId(2), 0);
        htex.cancel(TaskId(3), 0);

        let mut outcomes = std::collections::HashMap::new();
        while outcomes.len() < 3 {
            for o in rx.recv_timeout(Duration::from_secs(10)).expect("settles") {
                outcomes.insert(o.id.0, o.result);
            }
        }
        let v: u64 = wire::from_bytes(outcomes[&1].as_ref().unwrap()).unwrap();
        assert_eq!(v, 1, "uncancelled blocker completes normally");
        let held_err = format!("{:?}", outcomes[&2].as_ref().unwrap_err());
        assert!(
            held_err.contains("cancelled"),
            "held-task cancel: {held_err}"
        );
        let queued_err = format!("{:?}", outcomes[&3].as_ref().unwrap_err());
        assert!(
            queued_err.contains("cancelled before dispatch"),
            "queued-task cancel: {queued_err}"
        );
        assert_eq!(htex.outstanding(), 0);
        htex.shutdown();
    }
}
