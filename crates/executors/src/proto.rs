//! Wire protocol shared by the executors (§4.3).
//!
//! Every message crossing the `nexus` fabric is one of these enums,
//! wire-encoded. Tasks travel as `(task id, attempt, app id, argument
//! bytes)` — the function itself resolves worker-side through the shared
//! app registry, the reproduction's stand-in for serializing functions by
//! reference.

use parsl_core::error::AppError;
use serde::{Deserialize, Serialize};

/// A task as shipped to workers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WireTask {
    /// DFK task id.
    pub id: u64,
    /// Retry attempt, echoed in the result.
    pub attempt: u32,
    /// App registry id.
    pub app_id: u64,
    /// Tenant (logical workflow) the task was submitted under, carried
    /// across the fabric so remote accounting can stay per-tenant.
    pub tenant: u32,
    /// Logical items fused into this task (1 normally; the chunk length
    /// for fused `app.map` chunks).
    pub items: u32,
    /// Wire-encoded argument tuple.
    pub args: Vec<u8>,
}

impl WireTask {
    /// Wire form of a DFK [`TaskSpec`](parsl_core::executor::TaskSpec).
    pub fn from_spec(task: &parsl_core::executor::TaskSpec) -> Self {
        WireTask {
            id: task.id.0,
            attempt: task.attempt,
            app_id: task.app.id.0,
            tenant: task.tenant.0,
            items: task.items,
            args: task.args.to_vec(),
        }
    }

    /// Conservative encoded-size estimate, used to chunk submit batches at
    /// the fabric's frame budget without encoding twice. Header fields are
    /// varints ≤ 10 bytes each plus the args length prefix.
    pub fn encoded_size_hint(&self) -> usize {
        self.args.len() + 48
    }
}

/// Shared client-side batch sender for the wire executors (HTEX, EXEX,
/// LLEX): convert the specs, chunk them at the transport's frame budget,
/// bump the executor's outstanding gauge per chunk, and ship `SubmitBatch`
/// frames to the interchange — rolling the gauge back for a chunk the
/// transport refuses.
pub fn send_task_batch(
    ep: &dyn nexus::Port,
    ix: &nexus::Addr,
    outstanding: &std::sync::atomic::AtomicUsize,
    max_frame_bytes: usize,
    tasks: &[parsl_core::executor::TaskSpec],
) -> Result<(), parsl_core::executor::ExecutorError> {
    use std::sync::atomic::Ordering;
    let wire_tasks: Vec<WireTask> = tasks.iter().map(WireTask::from_spec).collect();
    for chunk in chunk_by_frame_budget(wire_tasks, max_frame_bytes) {
        let n = chunk.len();
        outstanding.fetch_add(n, Ordering::Relaxed);
        ep.send(ix, encode(&ToInterchange::SubmitBatch(chunk)))
            .map_err(|e| {
                outstanding.fetch_sub(n, Ordering::Relaxed);
                parsl_core::executor::ExecutorError::Comm(e.to_string())
            })?;
    }
    Ok(())
}

/// Split a submit batch into frame-sized chunks: each chunk's estimated
/// payload stays within `max_frame_bytes` (a chunk always takes at least
/// one task, so an oversized single task still ships).
pub fn chunk_by_frame_budget(tasks: Vec<WireTask>, max_frame_bytes: usize) -> Vec<Vec<WireTask>> {
    let mut chunks = Vec::new();
    let mut chunk: Vec<WireTask> = Vec::new();
    let mut chunk_bytes = 0usize;
    for t in tasks {
        let sz = t.encoded_size_hint();
        if !chunk.is_empty() && chunk_bytes + sz > max_frame_bytes {
            chunks.push(std::mem::take(&mut chunk));
            chunk_bytes = 0;
        }
        chunk_bytes += sz;
        chunk.push(t);
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

/// Convert one `Results` frame into the completion batch the DFK's
/// collector consumes, stamped with a shared finish time. Shared by the
/// wire executors' client loops (HTEX, EXEX, LLEX and the baselines): the
/// frame that crossed the fabric as one message stays one message on the
/// completion channel instead of exploding into per-task sends.
pub fn outcomes_from_results(results: Vec<WireResult>) -> Vec<parsl_core::executor::TaskOutcome> {
    let finished = std::time::Instant::now();
    results
        .into_iter()
        .map(|r| parsl_core::executor::TaskOutcome {
            id: parsl_core::types::TaskId(r.id),
            attempt: r.attempt,
            result: r
                .outcome
                .map(bytes::Bytes::from)
                .map_err(parsl_core::error::TaskError::App),
            worker: Some(r.worker),
            started: None,
            finished: Some(finished),
        })
        .collect()
}

/// Convert a `ManagerLost` report into one completion batch of
/// `ExecutorLost` failures (the reason is shared, not cloned per task).
pub fn outcomes_from_lost(
    tasks: Vec<(u64, u32)>,
    reason: &str,
) -> Vec<parsl_core::executor::TaskOutcome> {
    let reason: std::sync::Arc<str> = reason.into();
    tasks
        .into_iter()
        .map(|(id, attempt)| {
            parsl_core::executor::TaskOutcome::new(
                parsl_core::types::TaskId(id),
                attempt,
                Err(parsl_core::error::TaskError::ExecutorLost(
                    std::sync::Arc::clone(&reason),
                )),
            )
        })
        .collect()
}

/// An app advertisement: enough identity for a remote worker process to
/// bind its compiled-in body for `name` under the interchange's `id`.
/// The reproduction's analogue of Parsl serializing functions by
/// reference — the body never crosses the wire, only the reference.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WireApp {
    /// Registry id tasks will arrive with.
    pub id: u64,
    /// App name, resolved against the worker's builtin table.
    pub name: String,
    /// Advisory type signature (kept for memo-hash parity and debugging).
    pub signature: String,
}

/// A result as shipped back from workers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WireResult {
    /// DFK task id.
    pub id: u64,
    /// Attempt this result belongs to.
    pub attempt: u32,
    /// The app's output bytes or its failure.
    pub outcome: Result<Vec<u8>, AppError>,
    /// Worker identity, for monitoring.
    pub worker: String,
}

/// Messages arriving at an interchange (from the executor client or from
/// managers/workers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToInterchange {
    /// Client submits one task.
    Submit(WireTask),
    /// Client submits a batch of tasks in one frame (§4.3.1 batching).
    /// Semantically `Submit` × n with one message's framing/transport cost;
    /// the interchange appends the whole batch to its pending queue in
    /// submission order.
    SubmitBatch(Vec<WireTask>),
    /// A manager (HTEX/EXEX) or worker (LLEX) announces itself with its
    /// task capacity.
    Register {
        /// Sender's fabric address.
        name: String,
        /// Concurrent task slots (workers + prefetch for managers; 1 for
        /// LLEX workers).
        capacity: usize,
        /// `(task id, attempt)` pairs the sender is still holding. Empty
        /// on first registration; on a reconnect re-register the
        /// interchange reconciles its accounting against this set and
        /// reports anything that vanished in the gap as lost (so the DFK
        /// retries it) instead of leaving it outstanding forever.
        held: Vec<(u64, u32)>,
    },
    /// Manager reports `free` open slots after dispatching work.
    Capacity {
        /// Manager address.
        name: String,
        /// Open slots.
        free: usize,
    },
    /// Batch of finished tasks.
    Results(Vec<WireResult>),
    /// Periodic liveness signal (§4.3.1).
    Heartbeat {
        /// Sender address.
        name: String,
    },
    /// Graceful departure; outstanding tasks have already been returned.
    Deregister {
        /// Sender address.
        name: String,
    },
    /// Client asks the interchange to retire one manager: stop dispatching
    /// to it, then forward a shutdown. Routing retirement through the
    /// interchange (instead of telling the manager directly) closes the
    /// race where a task batch and a shutdown cross on the wire.
    Retire {
        /// Manager address to retire.
        name: String,
    },
    /// Client abandons one attempt (the losing half of a straggler hedge).
    /// Advisory: if the attempt is still queued the interchange drops it
    /// and synthesizes a failed result so the client's outstanding gauge
    /// settles; if it already reached a manager the cancel is forwarded
    /// and the worker skips execution, but a result still flows back so
    /// held-task accounting stays intact.
    Cancel {
        /// DFK task id.
        id: u64,
        /// Attempt to abandon.
        attempt: u32,
    },
    /// Administrative command channel request (§4.3.1).
    Command(Command),
    /// Stop the interchange.
    Shutdown,
}

/// Messages from an interchange to a manager (HTEX) or pool leader (EXEX).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToManager {
    /// A batch of tasks to run.
    Tasks(Vec<WireTask>),
    /// App advertisements, sent before the first task batch referencing
    /// them. In-proc managers share the client's registry and ignore
    /// these; remote worker processes bind builtins by name.
    Apps(Vec<WireApp>),
    /// Liveness signal from the interchange.
    Heartbeat,
    /// Skip executing this attempt if it hasn't started; a "cancelled"
    /// failure result is still returned so accounting stays intact.
    Cancel {
        /// DFK task id.
        id: u64,
        /// Attempt to abandon.
        attempt: u32,
    },
    /// Drain and exit.
    Shutdown,
}

/// Messages from an interchange back to the executor client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToClient {
    /// Finished tasks.
    Results(Vec<WireResult>),
    /// A manager stopped heartbeating while holding tasks; the DFK decides
    /// whether to retry them (§4.3.1).
    ManagerLost {
        /// The manager that disappeared.
        name: String,
        /// `(task id, attempt)` pairs that were outstanding on it.
        tasks: Vec<(u64, u32)>,
    },
    /// Reply on the command channel.
    CommandReply(CommandReply),
}

/// Synchronous administrative actions on the interchange (§4.3.1: "the
/// interchange can be asked for outstanding task information, to blacklist
/// managers, or to shutdown the executor").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub enum Command {
    /// How many tasks are queued or running.
    OutstandingInfo,
    /// How many workers are connected.
    ConnectedWorkers,
    /// Stop sending tasks to this manager.
    Blacklist(String),
    /// Shut the executor down.
    ShutdownExecutor,
}

/// Replies to [`Command`]s.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub enum CommandReply {
    /// Outstanding task count.
    Outstanding(usize),
    /// Connected worker count.
    Workers(usize),
    /// Generic acknowledgement.
    Ack,
}

/// Shared client-side receive loop for the wire executors (HTEX, EXEX,
/// LLEX), generalized over the transport: forward each `Results` frame as
/// one completion batch, convert lost-manager reports into `ExecutorLost`
/// retries, and resolve synchronous command replies. Returns when `stop`
/// is set or the completion channel closes.
pub(crate) fn client_recv_loop(
    ep: &dyn nexus::Port,
    stop: &std::sync::atomic::AtomicBool,
    outstanding: &std::sync::atomic::AtomicUsize,
    ctx: &parsl_core::executor::ExecutorContext,
    lost_noun: &str,
    command_reply: Option<&parking_lot::Mutex<Option<crossbeam::channel::Sender<CommandReply>>>>,
) {
    use std::sync::atomic::Ordering;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(env) = ep.recv_timeout(std::time::Duration::from_millis(50)) else {
            continue;
        };
        match decode::<ToClient>(&env.payload) {
            Ok(ToClient::Results(results)) => {
                // Forward the whole frame as one completion batch — the
                // batching the interchange/manager did on the wire is
                // preserved through the DFK's collector.
                outstanding.fetch_sub(results.len(), Ordering::Relaxed);
                let outcomes = outcomes_from_results(results);
                if !outcomes.is_empty() && ctx.completions.send(outcomes).is_err() {
                    return;
                }
            }
            Ok(ToClient::ManagerLost { name, tasks }) => {
                outstanding.fetch_sub(tasks.len(), Ordering::Relaxed);
                let outcomes = outcomes_from_lost(
                    tasks,
                    &format!("{lost_noun} {name} lost (heartbeat expired)"),
                );
                if !outcomes.is_empty() && ctx.completions.send(outcomes).is_err() {
                    return;
                }
            }
            Ok(ToClient::CommandReply(reply)) => {
                if let Some(slot) = command_reply {
                    if let Some(tx) = slot.lock().take() {
                        let _ = tx.send(reply);
                    }
                }
            }
            Err(_) => {}
        }
    }
}

/// Encode any protocol message as fabric payload.
pub fn encode<T: Serialize>(msg: &T) -> bytes::Bytes {
    bytes::Bytes::from(wire::to_bytes(msg).expect("protocol messages always encode"))
}

/// Decode a fabric payload.
pub fn decode<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> Result<T, wire::Error> {
    wire::from_bytes(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrip() {
        let t = WireTask {
            id: 7,
            attempt: 1,
            app_id: 3,
            tenant: 5,
            items: 1,
            args: vec![1, 2, 3],
        };
        let msg = ToInterchange::Submit(t.clone());
        let bytes = encode(&msg);
        match decode::<ToInterchange>(&bytes).unwrap() {
            ToInterchange::Submit(got) => assert_eq!(got, t),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip() {
        let tasks: Vec<WireTask> = (0..5)
            .map(|i| WireTask {
                id: i,
                attempt: 0,
                app_id: 1,
                tenant: 0,
                items: 1,
                args: vec![i as u8; 8],
            })
            .collect();
        let bytes = encode(&ToInterchange::SubmitBatch(tasks.clone()));
        match decode::<ToInterchange>(&bytes).unwrap() {
            ToInterchange::SubmitBatch(got) => assert_eq!(got, tasks),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn chunking_respects_frame_budget_and_order() {
        let tasks: Vec<WireTask> = (0..100)
            .map(|i| WireTask {
                id: i,
                attempt: 0,
                app_id: 1,
                tenant: 0,
                items: 1,
                args: vec![0; 60],
            })
            .collect();
        let per_task = tasks[0].encoded_size_hint();
        let chunks = chunk_by_frame_budget(tasks, per_task * 10);
        assert_eq!(chunks.len(), 10);
        let flat: Vec<u64> = chunks.iter().flatten().map(|t| t.id).collect();
        assert_eq!(flat, (0..100).collect::<Vec<u64>>());
        // A single task larger than the budget still ships alone.
        let huge = vec![WireTask {
            id: 7,
            attempt: 0,
            app_id: 1,
            tenant: 0,
            items: 1,
            args: vec![0; 4096],
        }];
        let chunks = chunk_by_frame_budget(huge, 64);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 1);
    }

    #[test]
    fn result_roundtrip_with_error() {
        let r = WireResult {
            id: 9,
            attempt: 0,
            outcome: Err(AppError::msg("boom")),
            worker: "w1".into(),
        };
        let msg = ToClient::Results(vec![r.clone()]);
        let bytes = encode(&msg);
        match decode::<ToClient>(&bytes).unwrap() {
            ToClient::Results(v) => assert_eq!(v, vec![r]),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn command_roundtrip() {
        for cmd in [
            Command::OutstandingInfo,
            Command::ConnectedWorkers,
            Command::Blacklist("m-3".into()),
            Command::ShutdownExecutor,
        ] {
            let bytes = encode(&ToInterchange::Command(cmd.clone()));
            match decode::<ToInterchange>(&bytes).unwrap() {
                ToInterchange::Command(got) => assert_eq!(got, cmd),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }
}
