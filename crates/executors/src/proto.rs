//! Wire protocol shared by the executors (§4.3).
//!
//! Every message crossing the `nexus` fabric is one of these enums,
//! wire-encoded. Tasks travel as `(task id, attempt, app id, argument
//! bytes)` — the function itself resolves worker-side through the shared
//! app registry, the reproduction's stand-in for serializing functions by
//! reference.

use parsl_core::error::AppError;
use serde::{Deserialize, Serialize};

/// A task as shipped to workers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WireTask {
    /// DFK task id.
    pub id: u64,
    /// Retry attempt, echoed in the result.
    pub attempt: u32,
    /// App registry id.
    pub app_id: u64,
    /// Wire-encoded argument tuple.
    pub args: Vec<u8>,
}

/// A result as shipped back from workers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WireResult {
    /// DFK task id.
    pub id: u64,
    /// Attempt this result belongs to.
    pub attempt: u32,
    /// The app's output bytes or its failure.
    pub outcome: Result<Vec<u8>, AppError>,
    /// Worker identity, for monitoring.
    pub worker: String,
}

/// Messages arriving at an interchange (from the executor client or from
/// managers/workers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToInterchange {
    /// Client submits one task.
    Submit(WireTask),
    /// A manager (HTEX/EXEX) or worker (LLEX) announces itself with its
    /// task capacity.
    Register {
        /// Sender's fabric address.
        name: String,
        /// Concurrent task slots (workers + prefetch for managers; 1 for
        /// LLEX workers).
        capacity: usize,
    },
    /// Manager reports `free` open slots after dispatching work.
    Capacity {
        /// Manager address.
        name: String,
        /// Open slots.
        free: usize,
    },
    /// Batch of finished tasks.
    Results(Vec<WireResult>),
    /// Periodic liveness signal (§4.3.1).
    Heartbeat {
        /// Sender address.
        name: String,
    },
    /// Graceful departure; outstanding tasks have already been returned.
    Deregister {
        /// Sender address.
        name: String,
    },
    /// Client asks the interchange to retire one manager: stop dispatching
    /// to it, then forward a shutdown. Routing retirement through the
    /// interchange (instead of telling the manager directly) closes the
    /// race where a task batch and a shutdown cross on the wire.
    Retire {
        /// Manager address to retire.
        name: String,
    },
    /// Administrative command channel request (§4.3.1).
    Command(Command),
    /// Stop the interchange.
    Shutdown,
}

/// Messages from an interchange to a manager (HTEX) or pool leader (EXEX).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToManager {
    /// A batch of tasks to run.
    Tasks(Vec<WireTask>),
    /// Liveness signal from the interchange.
    Heartbeat,
    /// Drain and exit.
    Shutdown,
}

/// Messages from an interchange back to the executor client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ToClient {
    /// Finished tasks.
    Results(Vec<WireResult>),
    /// A manager stopped heartbeating while holding tasks; the DFK decides
    /// whether to retry them (§4.3.1).
    ManagerLost {
        /// The manager that disappeared.
        name: String,
        /// `(task id, attempt)` pairs that were outstanding on it.
        tasks: Vec<(u64, u32)>,
    },
    /// Reply on the command channel.
    CommandReply(CommandReply),
}

/// Synchronous administrative actions on the interchange (§4.3.1: "the
/// interchange can be asked for outstanding task information, to blacklist
/// managers, or to shutdown the executor").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub enum Command {
    /// How many tasks are queued or running.
    OutstandingInfo,
    /// How many workers are connected.
    ConnectedWorkers,
    /// Stop sending tasks to this manager.
    Blacklist(String),
    /// Shut the executor down.
    ShutdownExecutor,
}

/// Replies to [`Command`]s.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub enum CommandReply {
    /// Outstanding task count.
    Outstanding(usize),
    /// Connected worker count.
    Workers(usize),
    /// Generic acknowledgement.
    Ack,
}

/// Encode any protocol message as fabric payload.
pub fn encode<T: Serialize>(msg: &T) -> bytes::Bytes {
    bytes::Bytes::from(wire::to_bytes(msg).expect("protocol messages always encode"))
}

/// Decode a fabric payload.
pub fn decode<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> Result<T, wire::Error> {
    wire::from_bytes(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrip() {
        let t = WireTask { id: 7, attempt: 1, app_id: 3, args: vec![1, 2, 3] };
        let msg = ToInterchange::Submit(t.clone());
        let bytes = encode(&msg);
        match decode::<ToInterchange>(&bytes).unwrap() {
            ToInterchange::Submit(got) => assert_eq!(got, t),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn result_roundtrip_with_error() {
        let r = WireResult {
            id: 9,
            attempt: 0,
            outcome: Err(AppError::msg("boom")),
            worker: "w1".into(),
        };
        let msg = ToClient::Results(vec![r.clone()]);
        let bytes = encode(&msg);
        match decode::<ToClient>(&bytes).unwrap() {
            ToClient::Results(v) => assert_eq!(v, vec![r]),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn command_roundtrip() {
        for cmd in [
            Command::OutstandingInfo,
            Command::ConnectedWorkers,
            Command::Blacklist("m-3".into()),
            Command::ShutdownExecutor,
        ] {
            let bytes = encode(&ToInterchange::Command(cmd.clone()));
            match decode::<ToInterchange>(&bytes).unwrap() {
                ToInterchange::Command(got) => assert_eq!(got, cmd),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }
}
