//! Sequence analysis: the SwiftSeq-style many-task workflow from §2.1.
//!
//! "DNA sequence analysis ... is computationally-intensive, data-intensive,
//! and requires multiple processing steps using various processing tools
//! (alignment, quality control, variant calling)". This example runs that
//! dataflow per sample: stage in the reference and reads (simulated remote
//! files), align, QC in parallel with alignment post-processing, call
//! variants, and merge — with retries on, since long campaigns must expect
//! failures (§3.7).
//!
//! Run with: `cargo run --example sequence_analysis`

use parsl::core::combinators::join_all;
use parsl::data::{DataManager, DataManagerConfig, File, StagedFile};
use parsl::prelude::*;

const SAMPLES: usize = 6;

/// A toy "alignment": count pattern hits per chunk of the reads file.
fn align(reference: &StagedFile, reads: &StagedFile) -> Vec<u32> {
    let refb = std::fs::read(&reference.local_path).unwrap_or_default();
    let reads = std::fs::read(&reads.local_path).unwrap_or_default();
    let k = (refb.first().copied().unwrap_or(1) % 7 + 1) as usize;
    reads
        .chunks(1024)
        .map(|c| c.iter().filter(|&&b| b as usize % 13 == k).count() as u32)
        .collect()
}

fn main() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::HtexExecutor::new(
            parsl::executors::HtexConfig {
                workers_per_node: 4,
                nodes_per_block: 2,
                init_blocks: 1,
                ..Default::default()
            },
        ))
        .retries(2)
        .memoize(true)
        .build()
        .expect("kernel starts");
    let dm = DataManager::new(&dfk, DataManagerConfig::default());

    // Reference genome staged once, shared by every sample (§4.5).
    let reference = dm.stage_in(File::parse("globus://genomes/hg38/chr21.fa"));

    let align_app = dfk.python_app("align", |reference: StagedFile, reads: StagedFile| {
        align(&reference, &reads)
    });
    let qc_app = dfk.python_app("quality_control", |reads: StagedFile| {
        // Fraction of "high-quality" bytes.
        let b = std::fs::read(&reads.local_path).unwrap_or_default();
        let good = b.iter().filter(|&&x| x > 40).count();
        good as f64 / b.len().max(1) as f64
    });
    let call_variants = dfk.python_app(
        "call_variants",
        |alignments: Vec<u32>, qc: f64| -> Vec<u32> {
            if qc < 0.05 {
                return Vec::new(); // sample failed QC
            }
            alignments.into_iter().filter(|&c| c > 20).collect()
        },
    );
    let merge = dfk.python_app("merge_vcf", |per_sample: Vec<Vec<u32>>| {
        per_sample.into_iter().flatten().collect::<Vec<u32>>().len() as u64
    });

    // Per-sample pipelines run fully in parallel; each is alignment + QC
    // (independent) feeding variant calling.
    let mut per_sample = Vec::new();
    for s in 0..SAMPLES {
        let reads = dm.stage_in(File::parse(&format!(
            "ftp://seqstore/run42/sample{s}.fastq"
        )));
        let aligned = align_app.call((Dep::future(reference.clone()), Dep::future(reads.clone())));
        let qc = parsl::core::call!(qc_app, reads);
        let variants = call_variants.call((Dep::future(aligned), Dep::future(qc)));
        per_sample.push(variants);
    }
    let all = join_all(&dfk, per_sample);
    let merged = parsl::core::call!(merge, all);

    let total = merged.result().expect("workflow completes");
    println!("merged variant count across {SAMPLES} samples: {total}");
    let (hits, misses) = dfk.memo_stats();
    println!(
        "tasks: {}, memo hits/misses: {hits}/{misses} (re-run this binary body for hits)",
        dfk.task_count()
    );
    dfk.shutdown();
}
