//! Sequence analysis: the SwiftSeq-style many-task workflow from §2.1.
//!
//! "DNA sequence analysis ... is computationally-intensive, data-intensive,
//! and requires multiple processing steps using various processing tools
//! (alignment, quality control, variant calling)". This example runs that
//! dataflow per sample: stage in the reference and reads (simulated remote
//! files), align, QC in parallel with alignment post-processing, call
//! variants, and merge — with retries on, since long campaigns must expect
//! failures (§3.7).
//!
//! The data plane carries the workflow: the reference genome is one large
//! shared input read by every sample, so stage-ins flow through the
//! executor-side staging cache (one WAN transfer no matter how many
//! samples ask) and alignment tasks declare their inputs so `DataAware`
//! routing pulls them toward the executor holding the staged bytes.
//!
//! Run with: `cargo run --example sequence_analysis`

use parsl::core::combinators::join_all;
use parsl::core::datamap::DataHints;
use parsl::core::SchedulerPolicy;
use parsl::data::{DataManager, DataManagerConfig, File, StagedFile};
use parsl::prelude::*;

const SAMPLES: usize = 24;

/// A toy "alignment": count pattern hits per chunk of the reads file.
fn align(reference: &StagedFile, reads: &StagedFile) -> Vec<u32> {
    let refb = std::fs::read(&reference.local_path).unwrap_or_default();
    let reads = std::fs::read(&reads.local_path).unwrap_or_default();
    let k = (refb.first().copied().unwrap_or(1) % 7 + 1) as usize;
    reads
        .chunks(1024)
        .map(|c| c.iter().filter(|&&b| b as usize % 13 == k).count() as u32)
        .collect()
}

fn main() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::HtexExecutor::new(
            parsl::executors::HtexConfig {
                workers_per_node: 4,
                nodes_per_block: 2,
                init_blocks: 1,
                ..Default::default()
            },
        ))
        .retries(2)
        .memoize(true)
        .scheduler(SchedulerPolicy::data_aware())
        .build()
        .expect("kernel starts");
    // 64 MB of staging cache: the shared reference crosses the WAN once,
    // every later stage-in of it is a cache hit (or joins the in-flight
    // transfer).
    let dm = DataManager::new(
        &dfk,
        DataManagerConfig {
            cache_budget_bytes: Some(64 * 1024 * 1024),
            ..Default::default()
        },
    );

    // Reference genome, shared by every sample (§4.5). Each sample asks
    // for it independently below — the cache's single flight makes that
    // one transfer — and its DataRef is the hint that steers aligners
    // toward the staged copy.
    let reference_file = File::parse("globus://genomes/hg38/chr21.fa");
    let reference_hint = DataManager::data_ref(&reference_file);

    let align_app = dfk.python_app("align", |reference: StagedFile, reads: StagedFile| {
        align(&reference, &reads)
    });
    let qc_app = dfk.python_app("quality_control", |reads: StagedFile| {
        // Fraction of "high-quality" bytes.
        let b = std::fs::read(&reads.local_path).unwrap_or_default();
        let good = b.iter().filter(|&&x| x > 40).count();
        good as f64 / b.len().max(1) as f64
    });
    let call_variants = dfk.python_app(
        "call_variants",
        |alignments: Vec<u32>, qc: f64| -> Vec<u32> {
            if qc < 0.05 {
                return Vec::new(); // sample failed QC
            }
            alignments.into_iter().filter(|&c| c > 20).collect()
        },
    );
    let merge = dfk.python_app("merge_vcf", |per_sample: Vec<Vec<u32>>| {
        per_sample.into_iter().flatten().collect::<Vec<u32>>().len() as u64
    });

    // Per-sample pipelines run fully in parallel; each is alignment + QC
    // (independent) feeding variant calling.
    let mut per_sample = Vec::new();
    for s in 0..SAMPLES {
        let reads_file = File::parse(&format!("ftp://seqstore/run42/sample{s}.fastq"));
        let reads_hint = DataManager::data_ref(&reads_file);
        let reference = dm.stage_in(reference_file.clone());
        let reads = dm.stage_in(reads_file);
        // Declared inputs: the DataAware policy scores executors by the
        // cost of moving the non-resident bytes, so the wide fan-out over
        // the shared reference converges instead of scattering.
        let aligned = align_app
            .invoke()
            .hints(DataHints::reading(vec![reference_hint, reads_hint]))
            .call((Dep::future(reference.clone()), Dep::future(reads.clone())));
        let qc = parsl::core::call!(qc_app, reads);
        let variants = call_variants.call((Dep::future(aligned), Dep::future(qc)));
        per_sample.push(variants);
    }
    let all = join_all(&dfk, per_sample);
    let merged = parsl::core::call!(merge, all);

    let total = merged.result().expect("workflow completes");
    println!("merged variant count across {SAMPLES} samples: {total}");
    let (hits, misses) = dfk.memo_stats();
    println!(
        "tasks: {}, memo hits/misses: {hits}/{misses} (re-run this binary body for hits)",
        dfk.task_count()
    );
    if let Some(cache) = dm.cache_stats() {
        println!(
            "staging cache: {} hits, {} misses, {} coalesced ({} bytes resident)",
            cache.hits, cache.misses, cache.coalesced, cache.used_bytes
        );
    }
    println!(
        "data plane: {} bytes moved between executors",
        dfk.data_bytes_moved()
    );
    dfk.shutdown();
}
