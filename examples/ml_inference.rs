//! ML inference serving: the DLHub-style bag-of-tasks use case from §2.1.
//!
//! "DLHub requires methods to manage many short-duration inference
//! requests using a bag-of-tasks execution model ... real-time workloads
//! that require low-latency responses." Accordingly this example uses the
//! Low Latency Executor on a fixed worker pool and measures per-request
//! round trips.
//!
//! Run with: `cargo run --release --example ml_inference`

use parsl::prelude::*;
use std::time::Instant;

/// A tiny "model": logistic regression over a feature vector.
fn infer(weights: &[f64], features: &[f64]) -> f64 {
    let z: f64 = weights.iter().zip(features).map(|(w, x)| w * x).sum();
    1.0 / (1.0 + (-z).exp())
}

fn main() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::LlexExecutor::new(
            parsl::executors::LlexConfig {
                workers: 4,
                ..Default::default()
            },
        ))
        .build()
        .expect("kernel starts");

    // "Serve" a published model: weights captured by the app closure, the
    // way DLHub keeps a model resident on its servers.
    let weights: Vec<f64> = (0..16)
        .map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.5)
        .collect();
    let w = weights.clone();
    let predict = dfk.python_app("predict", move |features: Vec<f64>| infer(&w, &features));

    // Bag of inference requests from "concurrent researchers".
    let requests: Vec<Vec<f64>> = (0..200)
        .map(|r| {
            (0..16)
                .map(|i| ((r * 13 + i * 7) % 23) as f64 / 23.0)
                .collect()
        })
        .collect();

    let t0 = Instant::now();
    let futures: Vec<_> = requests
        .iter()
        .map(|features| parsl::core::call!(predict, features.clone()))
        .collect();
    let scores: Vec<f64> = futures
        .iter()
        .map(|f| f.result().expect("inference runs"))
        .collect();
    let elapsed = t0.elapsed();

    // Interactive follow-up request, measured individually — the latency-
    // sensitive path the LLEX exists for.
    let t1 = Instant::now();
    let one = parsl::core::call!(predict, requests[0].clone());
    let score = one.result().expect("inference runs");
    let single = t1.elapsed();

    let positive = scores.iter().filter(|&&s| s > 0.5).count();
    println!(
        "served {} requests in {elapsed:?} ({positive} positive)",
        scores.len()
    );
    println!("single-request round trip: {single:?} (score {score:.3})");
    println!(
        "throughput: {:.0} requests/s",
        scores.len() as f64 / elapsed.as_secs_f64()
    );
    dfk.shutdown();
}
