//! Quickstart: the paper's §3.1 hello-world pair — a Python app and a Bash
//! app — plus future chaining.
//!
//! Run with: `cargo run --example quickstart`

use parsl::prelude::*;

fn main() {
    // Configuration is separate from program logic (§3.5): swap the
    // executor line and nothing else changes.
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(4))
        .build()
        .expect("kernel starts");

    // @python_app equivalent.
    let hello = dfk.python_app("hello", |name: String| format!("Hello {name}"));

    // @bash_app equivalent: the body renders a shell command; the task
    // value is its exit code.
    let hello_sh = dfk.bash_app("hello_sh", |name: String| format!("echo 'Hello {name}'"));

    // Invocations return futures immediately (§3.1.2).
    let f1 = parsl::core::call!(hello, "World".to_string());
    let f2 = parsl::core::call!(hello_sh, "World".to_string());
    println!("python app says: {}", f1.result().expect("hello runs"));
    println!("bash app exit code: {}", f2.result().expect("echo runs"));

    // Compositionality (§3.3): futures passed as arguments become
    // dependency edges; this chain runs strictly in order without any
    // explicit synchronization.
    let add_one = dfk.python_app("add_one", |x: i64| x + 1);
    let mut f = parsl::core::call!(add_one, 0i64);
    for _ in 0..9 {
        f = parsl::core::call!(add_one, f);
    }
    println!(
        "ten chained increments: {}",
        f.result().expect("chain runs")
    );

    // Parallel fan-out with the map construct, reduced with join_all.
    let square = dfk.python_app("square", |x: i64| x * x);
    let futs = parsl::core::combinators::map_app(&square, (1..=10).collect());
    let all = parsl::core::combinators::join_all(&dfk, futs);
    let sum: i64 = all.result().expect("squares run").iter().sum();
    println!("sum of squares 1..10: {sum}");

    dfk.shutdown();
}
