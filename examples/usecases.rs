//! Table 1: the five motivating use cases, each mapped to the executor and
//! configuration the paper's guidelines prescribe, and exercised end to
//! end on scaled-down workloads.
//!
//! Run with: `cargo run --release --example usecases`

use parsl::core::combinators::join_all;
use parsl::core::guidelines::{recommend, ExecutorChoice};
use parsl::prelude::*;
use std::time::Duration;

struct UseCase {
    name: &'static str,
    pattern: &'static str,
    nodes: usize,
    interactive: bool,
}

fn main() {
    // The qualitative rows of Table 1.
    let cases = [
        UseCase {
            name: "Sequence analysis",
            pattern: "dataflow / HTC",
            nodes: 500,
            interactive: false,
        },
        UseCase {
            name: "ML inference",
            pattern: "bag-of-tasks / FaaS",
            nodes: 10,
            interactive: true,
        },
        UseCase {
            name: "Materials science",
            pattern: "dataflow / interactive",
            nodes: 10,
            interactive: true,
        },
        UseCase {
            name: "Neuroscience",
            pattern: "sequential / batch",
            nodes: 10,
            interactive: false,
        },
        UseCase {
            name: "Cosmology",
            pattern: "dataflow / HTC",
            nodes: 4000,
            interactive: false,
        },
    ];
    println!("Table 1 use cases and the Figure 7 guideline choice:");
    for c in &cases {
        let choice = recommend(c.nodes, c.interactive);
        println!(
            "  {:<18} {:<24} {:>5} nodes -> {choice}",
            c.name, c.pattern, c.nodes
        );
    }

    // Run a miniature of each pattern to show the same program shapes work
    // against the recommended executor family.
    run_dataflow(ExecutorChoice::Htex);
    run_bag_of_tasks(ExecutorChoice::Llex);
    run_interactive(ExecutorChoice::Llex);
    run_sequential_batch(ExecutorChoice::Htex);
    run_extreme_scale(ExecutorChoice::Exex);
}

fn dfk_for(choice: ExecutorChoice) -> std::sync::Arc<DataFlowKernel> {
    let builder = DataFlowKernel::builder();
    match choice {
        ExecutorChoice::Llex => builder.executor(parsl::executors::LlexExecutor::new(
            parsl::executors::LlexConfig {
                workers: 4,
                ..Default::default()
            },
        )),
        ExecutorChoice::Htex => builder.executor(parsl::executors::HtexExecutor::new(
            parsl::executors::HtexConfig {
                workers_per_node: 2,
                nodes_per_block: 2,
                init_blocks: 1,
                ..Default::default()
            },
        )),
        ExecutorChoice::Exex => builder.executor(parsl::executors::ExexExecutor::new(
            parsl::executors::ExexConfig {
                ranks_per_pool: 5,
                init_pools: 1,
                ..Default::default()
            },
        )),
    }
    .build()
    .expect("kernel starts")
}

fn run_dataflow(choice: ExecutorChoice) {
    let dfk = dfk_for(choice);
    let stage_a = dfk.python_app("prep", |x: u64| x * 3);
    let stage_b = dfk.python_app("refine", |x: u64| x + 1);
    let futs: Vec<_> = (0..20u64)
        .map(|i| {
            let a = parsl::core::call!(stage_a, i);
            parsl::core::call!(stage_b, a)
        })
        .collect();
    let total: u64 = futs.iter().map(|f| f.result().expect("runs")).sum();
    println!("dataflow ({choice}): 20 two-stage pipelines, checksum {total}");
    dfk.shutdown();
}

fn run_bag_of_tasks(choice: ExecutorChoice) {
    let dfk = dfk_for(choice);
    let serve = dfk.python_app("serve", |q: u64| q % 7);
    let futs: Vec<_> = (0..100u64).map(|q| parsl::core::call!(serve, q)).collect();
    let answered = futs.iter().filter(|f| f.result().is_ok()).count();
    println!("bag-of-tasks ({choice}): {answered}/100 requests served");
    dfk.shutdown();
}

fn run_interactive(choice: ExecutorChoice) {
    let dfk = dfk_for(choice);
    // Notebook-style: iterate a model parameter, inspect, decide in code.
    let evaluate = dfk.python_app("evaluate", |alpha: f64| (alpha - 0.3).abs());
    let mut best = (f64::INFINITY, 0.0);
    let mut alpha = 0.9;
    for _ in 0..8 {
        let loss = parsl::core::call!(evaluate, alpha).result().expect("runs");
        if loss < best.0 {
            best = (loss, alpha);
        }
        alpha *= 0.7; // the "scientist" reacts to each result
    }
    println!(
        "interactive ({choice}): best alpha {:.3} (loss {:.3})",
        best.1, best.0
    );
    dfk.shutdown();
}

fn run_sequential_batch(choice: ExecutorChoice) {
    let dfk = dfk_for(choice);
    // Neuroscience-style: center-finding -> slice scoring -> reconstruct.
    let center = dfk.python_app("find_center", |slices: u64| slices / 2);
    let score = dfk.python_app("score", |c: u64| c as f64 * 0.9);
    let reconstruct = dfk.python_app("reconstruct", |s: f64| s > 10.0);
    let c = parsl::core::call!(center, 100u64);
    let s = parsl::core::call!(score, c);
    let ok = parsl::core::call!(reconstruct, s).result().expect("runs");
    println!("sequential batch ({choice}): reconstruction usable = {ok}");
    dfk.shutdown();
}

fn run_extreme_scale(choice: ExecutorChoice) {
    let dfk = dfk_for(choice);
    let simulate = dfk.python_app("simulate", |seed: u64| {
        std::thread::sleep(Duration::from_millis(2));
        seed.wrapping_mul(6364136223846793005) >> 33
    });
    let futs: Vec<_> = (0..64u64)
        .map(|s| parsl::core::call!(simulate, s))
        .collect();
    let all = join_all(&dfk, futs).result().expect("campaign completes");
    println!(
        "extreme scale ({choice}): {} simulations, sample {}",
        all.len(),
        all[0]
    );
    dfk.shutdown();
}
