//! Cosmology image simulation: the LSST use case from §2.1.
//!
//! "As execution time is dependent on the number of objects included in a
//! sensor/catalog, there is potential for significant imbalance ... thus
//! the simulation must group (and rebalance) tasks into appropriate sized
//! bundles for a given processing node." This example builds instance
//! catalogs with skewed object counts, bundles them to roughly equal work
//! (the program-level scheduling §2.2 highlights — plain code reshaping
//! the work queue), and runs the bundles with elasticity enabled.
//!
//! Run with: `cargo run --release --example cosmology`

use parsl::core::combinators::join_all;
use parsl::prelude::*;
use std::time::Duration;

const SENSORS: usize = 189; // LSST's sensor count
const WORKERS_PER_NODE: usize = 4;

fn main() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::HtexExecutor::new(
            parsl::executors::HtexConfig {
                workers_per_node: WORKERS_PER_NODE,
                nodes_per_block: 1,
                init_blocks: 1,
                min_blocks: 1,
                max_blocks: 4,
                ..Default::default()
            },
        ))
        .strategy(StrategyConfig::simple(1.0).interval(Duration::from_millis(100)))
        .retries(1)
        .build()
        .expect("kernel starts");

    // Stage 1: instance catalogs — object counts are heavily skewed, like
    // sensors pointed at dense star fields.
    let make_catalog = dfk.python_app("make_catalog", |sensor: u64| -> Vec<u64> {
        let n = 50 + (sensor * sensor * 2654435761) % 2000; // skewed sizes
        (0..n).map(|i| sensor * 100_000 + i).collect()
    });
    let catalogs: Vec<_> = (0..SENSORS as u64)
        .map(|s| parsl::core::call!(make_catalog, s))
        .collect();
    let catalogs = join_all(&dfk, catalogs).result().expect("catalogs built");

    // Program-level rebalancing, in ordinary Rust: greedy-bundle sensors
    // so each bundle simulates a similar number of objects.
    let target: u64 = catalogs.iter().map(|c| c.len() as u64).sum::<u64>() / 16;
    let mut bundles: Vec<Vec<u64>> = Vec::new();
    let mut current: Vec<u64> = Vec::new();
    let mut load = 0u64;
    for cat in &catalogs {
        current.extend_from_slice(cat);
        load += cat.len() as u64;
        if load >= target {
            bundles.push(std::mem::take(&mut current));
            load = 0;
        }
    }
    if !current.is_empty() {
        bundles.push(current);
    }
    let sizes: Vec<usize> = bundles.iter().map(|b| b.len()).collect();
    println!(
        "bundled {} sensors into {} bundles (sizes {}..{})",
        SENSORS,
        bundles.len(),
        sizes.iter().min().expect("non-empty"),
        sizes.iter().max().expect("non-empty"),
    );

    // Stage 2: simulate each bundle ("execution time is dependent on the
    // number of objects").
    let simulate = dfk.python_app("simulate_bundle", |objects: Vec<u64>| -> f64 {
        let mut acc = 0.0f64;
        for o in &objects {
            // A little per-object numerical work standing in for photon
            // simulation.
            acc += ((*o % 1000) as f64).sqrt().sin();
        }
        std::thread::sleep(Duration::from_millis(objects.len() as u64 / 50));
        acc
    });
    let images: Vec<_> = bundles
        .into_iter()
        .map(|b| parsl::core::call!(simulate, b))
        .collect();
    let fluxes = join_all(&dfk, images)
        .result()
        .expect("simulation completes");

    println!(
        "simulated {} images; total flux {:.3}",
        fluxes.len(),
        fluxes.iter().sum::<f64>()
    );
    println!(
        "peak workers in use: {} (elasticity grew blocks to match the bundle burst)",
        dfk.executor("htex")
            .expect("configured")
            .connected_workers()
    );
    dfk.shutdown();
}
