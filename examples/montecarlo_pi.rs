//! Monte-Carlo π: the classic map-reduce warm-up, with checkpointing.
//!
//! Demonstrates two planes working together:
//!
//! - **task fusion**: the shard fan-out goes through `app.map`, so the
//!   32 logical shards ship as a handful of fused chunk tasks instead of
//!   32 individual submissions;
//! - **fault tolerance** (§3.7): run once, kill the program, re-run —
//!   completed work is served from the checkpoint file and only missing
//!   work executes. Here both "runs" happen in one process.
//!
//! Fused chunks memoize like any task, keyed on the whole argument
//! slice — so the replayed run pins `chunk_size` to cut identical
//! chunks (auto-sizing adapts to observed service times, which would
//! chunk the second run differently and miss the checkpoint).
//!
//! Run with: `cargo run --release --example montecarlo_pi`

use parsl::core::fusion::MapOptions;
use parsl::prelude::*;

const SHARDS: u64 = 32;
const SAMPLES_PER_SHARD: u64 = 200_000;
const CHUNK: usize = 8; // pinned: deterministic chunks => checkpoint hits

fn estimate(ckpt: &std::path::Path, load: bool) -> (f64, u64, u64) {
    let mut builder = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(4))
        .memoize(true)
        .checkpoint_file(ckpt);
    if load {
        builder = builder.load_checkpoint(ckpt);
    }
    let dfk = builder.build().expect("kernel starts");

    let shard = dfk.python_app("mc_shard", |seed: u64| -> u64 {
        // xorshift-based uniform samples; deterministic per shard.
        let mut state = seed * 2685821657736338717 + 1;
        let mut hits = 0u64;
        for _ in 0..SAMPLES_PER_SHARD {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let y = (state >> 11) as f64 / (1u64 << 53) as f64;
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        hits
    });

    // 32 shards -> 4 fused tasks; per-shard results come back in order.
    let handle = shard.map_with(
        1..=SHARDS,
        MapOptions {
            chunk_size: Some(CHUNK),
            ..MapOptions::default()
        },
    );
    let hits: u64 = handle
        .results()
        .into_iter()
        .map(|r| r.expect("shard completes"))
        .sum();
    let pi = 4.0 * hits as f64 / (SHARDS * SAMPLES_PER_SHARD) as f64;
    let (memo_hits, memo_misses) = dfk.memo_stats();
    dfk.checkpoint().expect("checkpoint flushes");
    dfk.shutdown();
    (pi, memo_hits, memo_misses)
}

fn main() {
    let ckpt = std::env::temp_dir().join(format!("parsl-pi-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    let fused_tasks = (SHARDS as usize).div_ceil(CHUNK) as u64;
    let t0 = std::time::Instant::now();
    let (pi1, h1, m1) = estimate(&ckpt, false);
    let cold = t0.elapsed();
    println!(
        "first run:  pi = {pi1:.6} in {cold:?} \
         ({SHARDS} shards as {fused_tasks} fused tasks; memo hits {h1}, misses {m1})"
    );

    // "Re-execute the program": same apps, same arguments, same chunks,
    // new kernel — everything is served from the checkpoint.
    let t1 = std::time::Instant::now();
    let (pi2, h2, m2) = estimate(&ckpt, true);
    let warm = t1.elapsed();
    println!("second run: pi = {pi2:.6} in {warm:?} (memo hits {h2}, misses {m2})");
    assert_eq!(pi1, pi2, "checkpointed results must be identical");
    assert!(
        h2 >= fused_tasks,
        "second run must be served from the checkpoint"
    );
    println!(
        "speedup from checkpoint: {:.1}x",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
    let _ = std::fs::remove_file(&ckpt);
}
