//! Integration: HTEX over real loopback TCP (§4.3.1's deployment shape).
//!
//! These tests spawn actual `parsl-worker` *processes* that connect back
//! to the interchange's [`nexus::TcpHub`] over loopback sockets, register
//! capacity, and serve length-prefixed `wire` frames — the same protocol
//! the in-proc fabric carries, over a real transport. Apps resolve in the
//! worker by name against the compiled-in builtin table
//! (`parsl_executors::builtin`), so every app used here must be one the
//! worker knows.

use parsl::executors::{HtexConfig, HtexExecutor, TcpHtexOptions};
use parsl::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The worker binary built alongside this test (root package bin).
fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_parsl-worker").to_string()]
}

fn tcp_htex(cfg: HtexConfig) -> Arc<HtexExecutor> {
    Arc::new(
        HtexExecutor::tcp(
            cfg,
            TcpHtexOptions {
                worker_cmd: worker_cmd(),
                ..Default::default()
            },
        )
        .expect("bind loopback hub"),
    )
}

/// Block until `want` workers have registered over TCP (process spawn +
/// connect + register is asynchronous).
fn await_workers(htex: &HtexExecutor, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while htex.connected_workers() < want {
        assert!(
            Instant::now() < deadline,
            "only {}/{want} workers registered in time",
            htex.connected_workers()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn tcp_roundtrip_executes_tasks_in_worker_processes() {
    let htex = tcp_htex(HtexConfig {
        workers_per_node: 2,
        nodes_per_block: 2,
        init_blocks: 1,
        heartbeat_period: Duration::from_millis(50),
        heartbeat_threshold: Duration::from_secs(5),
        ..Default::default()
    });
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .build()
        .unwrap();
    // Bodies run in the worker process via the builtin table; these
    // client-side closures only fix the types and signatures.
    let double = dfk.python_app("double", |x: u64| x * 2);
    let add = dfk.python_app("add", |a: u64, b: u64| a + b);

    // Dependency chains force result→argument flow across the socket.
    let futs: Vec<_> = (0..40u64)
        .map(|i| {
            let d = parsl::core::call!(double, i);
            add.call((Dep::future(d), Dep::value(i)))
        })
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            3 * i as u64,
            "add(double({i}), {i})"
        );
    }
    assert_eq!(htex.outstanding(), 0);
    dfk.shutdown();
}

#[test]
fn tcp_unknown_app_fails_cleanly_instead_of_hanging() {
    let htex = tcp_htex(HtexConfig {
        workers_per_node: 1,
        init_blocks: 1,
        heartbeat_period: Duration::from_millis(50),
        heartbeat_threshold: Duration::from_secs(5),
        ..Default::default()
    });
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex)
        .build()
        .unwrap();
    // Not in the builtin table: the worker cannot bind it, the task fails
    // with the registry's missing-app error and surfaces like an app error.
    let stranger = dfk.python_app("no_such_builtin", |x: u64| x);
    let f = parsl::core::call!(stranger, 1u64);
    let err = f
        .result_timeout(Duration::from_secs(30))
        .expect_err("unknown app must fail");
    let rendered = err.to_string();
    assert!(
        rendered.contains("app"),
        "error should mention the app problem, got: {rendered}"
    );
    dfk.shutdown();
}

// ---------------------------------------------------------------------------
// Reconnect (heartbeat/reconnect layer): dropping a manager's TCP
// connection mid-stream must be transparent — the spoke reconnects, the
// manager re-registers carrying its held set, and the run's results,
// states, and attempt counts match an uninterrupted run.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RetryCount(std::sync::Mutex<std::collections::HashMap<u64, u32>>);

impl parsl::core::monitor::MonitorSink for RetryCount {
    fn on_event(&self, event: &parsl::core::monitor::MonitorEvent) {
        if let parsl::core::monitor::MonitorEvent::Retry { task, .. } = event {
            *self.0.lock().unwrap().entry(task.0).or_insert(0) += 1;
        }
    }
}

struct ReconnectRun {
    values: Vec<u64>,
    done: usize,
    retries: Vec<(u64, u32)>,
    outstanding: usize,
}

fn reconnect_run(cut_conn: bool) -> ReconnectRun {
    let retries = Arc::new(RetryCount::default());
    let htex = tcp_htex(HtexConfig {
        workers_per_node: 4,
        prefetch: 8,
        batch_size: 8,
        init_blocks: 1,
        heartbeat_period: Duration::from_millis(50),
        // Far beyond the reconnect time: the drop must be healed by the
        // transport layer, not surfaced as a manager loss.
        heartbeat_threshold: Duration::from_secs(5),
        ..Default::default()
    });
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .retries(2)
        .monitor(retries.clone())
        .build()
        .unwrap();
    let sleepy = dfk.python_app("sleep_ms", |ms: u64, x: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        x
    });
    let futs: Vec<_> = (0..12u64)
        .map(|i| sleepy.call((Dep::value(800u64), Dep::value(i))))
        .collect();

    if cut_conn {
        // Wait for the tasks to be dispatched and held in the worker
        // process, then sever its socket mid-stream.
        await_workers(&htex, 4);
        std::thread::sleep(Duration::from_millis(300));
        let nodes = htex.nodes();
        assert!(
            htex.drop_node_conn(&nodes[0]),
            "manager connection should exist to be dropped"
        );
    }

    let values: Vec<u64> = futs
        .iter()
        .map(|f| f.result_timeout(Duration::from_secs(30)).unwrap())
        .collect();
    dfk.wait_for_all();
    let done = *dfk
        .state_counts()
        .get(&TaskState::Done)
        .expect("some tasks done");
    let outstanding = htex.outstanding();
    let mut sorted: Vec<(u64, u32)> = retries
        .0
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    sorted.sort();
    dfk.shutdown();
    ReconnectRun {
        values,
        done,
        retries: sorted,
        outstanding,
    }
}

#[test]
fn dropped_manager_conn_heals_without_losing_or_retrying_tasks() {
    let baseline = reconnect_run(false);
    let cut = reconnect_run(true);
    assert_eq!(baseline.values, (0..12u64).collect::<Vec<_>>());
    assert_eq!(
        cut.values, baseline.values,
        "results must match uninterrupted run"
    );
    assert_eq!(cut.done, baseline.done, "state histogram must match");
    assert_eq!(
        baseline.retries,
        vec![],
        "uninterrupted run retries nothing"
    );
    assert_eq!(
        cut.retries, baseline.retries,
        "reconnect must not consume retry budget"
    );
    assert_eq!(baseline.outstanding, 0);
    assert_eq!(cut.outstanding, 0, "accounting must drain after reconnect");
}
