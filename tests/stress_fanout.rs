//! Stress: a 10 000-task wide fan-out plus diamond joins on the thread
//! pool. Guards the sharded task table and the batched ready-queue
//! dispatch against lost wakeups: one root completion makes all 10k
//! children ready in a single callback cascade (the worst case for the
//! dispatcher), and every future must still resolve with exact final
//! accounting.

use parsl::core::combinators::join_all;
use parsl::prelude::*;
use std::time::Duration;

const FANOUT: usize = 10_000;
const JOIN_WIDTH: usize = 4;

#[test]
fn wide_fanout_with_diamond_joins_resolves_fully() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(8))
        .build()
        .unwrap();

    let root = dfk.python_app("root", || 1u64);
    let widen = dfk.python_app("widen", |gate: u64, i: u64| gate + i);
    let reduce = dfk.python_app("reduce", |xs: Vec<u64>| xs.iter().sum::<u64>());

    // One gate task; its completion fans out to all 10k children at once.
    let gate = parsl::core::call!(root);
    let mid: Vec<AppFuture<u64>> = (0..FANOUT as u64)
        .map(|i| widen.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();

    // Diamond joins: groups of JOIN_WIDTH rejoin, then one final reduce.
    let joins: Vec<AppFuture<u64>> = mid
        .chunks(JOIN_WIDTH)
        .map(|chunk| {
            let joined = join_all(&dfk, chunk.to_vec());
            reduce.call((Dep::future(joined),))
        })
        .collect();
    let all = join_all(&dfk, joins.clone());
    let total = reduce.call((Dep::future(all),));

    // gate contributes 1 to each child: sum_i (1 + i).
    let expected: u64 = (0..FANOUT as u64).map(|i| 1 + i).sum();
    assert_eq!(
        total
            .result_timeout(Duration::from_secs(300))
            .expect("diamond DAG completes"),
        expected
    );

    // Spot-check the whole fan-out layer resolved with the right values,
    // not just the sums.
    for (i, f) in mid.iter().enumerate() {
        assert_eq!(f.result().unwrap(), 1 + i as u64, "fan-out child {i}");
    }
    for (g, f) in joins.iter().enumerate() {
        let base = (g * JOIN_WIDTH) as u64;
        let width = JOIN_WIDTH.min(FANOUT - g * JOIN_WIDTH) as u64;
        let expected_group: u64 = (base..base + width).map(|i| 1 + i).sum();
        assert_eq!(f.result().unwrap(), expected_group, "join group {g}");
    }

    dfk.wait_for_all();

    // Exact accounting: root + fan-out + (join_all + reduce) per group +
    // final join_all + final reduce; every one Done, none live, histogram
    // sums to the task count.
    let n_groups = FANOUT.div_ceil(JOIN_WIDTH);
    let expected_tasks = 1 + FANOUT + 2 * n_groups + 2;
    assert_eq!(dfk.task_count(), expected_tasks);
    assert_eq!(dfk.live_tasks(), 0);
    let counts = dfk.state_counts();
    assert_eq!(counts.get(&TaskState::Done), Some(&expected_tasks));
    assert_eq!(counts.values().sum::<usize>(), expected_tasks);

    dfk.shutdown();
}

/// The same wide fan-out submitted root-first against an already-completed
/// gate: every edge callback fires synchronously at submission, driving
/// the dispatcher from the submitting thread instead of the collector.
#[test]
fn fanout_on_resolved_parent_takes_the_synchronous_path() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(4))
        .build()
        .unwrap();
    let root = dfk.python_app("root", || 7u64);
    let widen = dfk.python_app("widen", |gate: u64, i: u64| gate * i);

    let gate = parsl::core::call!(root);
    assert_eq!(gate.result().unwrap(), 7); // resolved before the fan-out

    let futs: Vec<AppFuture<u64>> = (0..2_000u64)
        .map(|i| widen.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), 7 * i as u64);
    }
    dfk.wait_for_all();
    assert_eq!(dfk.live_tasks(), 0);
    let counts = dfk.state_counts();
    assert_eq!(counts.get(&TaskState::Done), Some(&dfk.task_count()));
    dfk.shutdown();
}
