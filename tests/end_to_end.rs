//! Integration: DataFlowKernel × HTEX × data staging × monitoring,
//! exercised together the way a real program would.

use parsl::core::combinators::{barrier, join_all, map_app};
use parsl::data::{DataManager, DataManagerConfig, File, StagedFile};
use parsl::monitor::MemoryStore;
use parsl::prelude::*;
use std::sync::Arc;

fn htex() -> parsl::executors::HtexExecutor {
    parsl::executors::HtexExecutor::new(parsl::executors::HtexConfig {
        workers_per_node: 2,
        nodes_per_block: 2,
        init_blocks: 1,
        ..Default::default()
    })
}

#[test]
fn staged_pipeline_with_monitoring() {
    let store = Arc::new(MemoryStore::new());
    let dfk = DataFlowKernel::builder()
        .executor(htex())
        .monitor(store.clone())
        .build()
        .unwrap();
    let dm = DataManager::new(&dfk, DataManagerConfig::default());

    // Two remote inputs, one shared processing step, one reduce.
    let a = dm.stage_in(File::parse("http://data.host/a.bin"));
    let b = dm.stage_in(File::parse("http://data.host/b.bin"));
    let size = dfk.python_app("size", |f: StagedFile| f.bytes);
    let total = dfk.python_app("total", |x: u64, y: u64| x + y);
    let sa = parsl::core::call!(size, a);
    let sb = parsl::core::call!(size, b);
    let t = total.call((Dep::future(sa), Dep::future(sb)));
    let sum = t.result().unwrap();
    assert!(sum > 0);

    dfk.wait_for_all();
    // Monitoring saw every task reach a successful terminal state.
    let done = store.tasks_in_state(TaskState::Done).len();
    assert_eq!(
        done,
        dfk.task_count(),
        "all tasks (incl. staging) completed"
    );
    // Timelines are causally ordered.
    let tl = store.task_timeline(t.task_id()).unwrap();
    assert!(tl.finished >= tl.launched && tl.launched >= tl.submitted);
    dfk.shutdown();
}

#[test]
fn wide_map_reduce_over_htex() {
    let dfk = DataFlowKernel::builder().executor(htex()).build().unwrap();
    let square = dfk.python_app("square", |x: u64| x * x);
    let futs = map_app(&square, (0..200).collect());
    let values = join_all(&dfk, futs).result().unwrap();
    let expect: u64 = (0..200u64).map(|x| x * x).sum();
    assert_eq!(values.iter().sum::<u64>(), expect);
    dfk.shutdown();
}

#[test]
fn barrier_synchronizes_phases() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PHASE1: AtomicUsize = AtomicUsize::new(0);
    PHASE1.store(0, Ordering::SeqCst);

    let dfk = DataFlowKernel::builder().executor(htex()).build().unwrap();
    let work = dfk.python_app("work", |x: u64| {
        PHASE1.fetch_add(1, Ordering::SeqCst);
        x
    });
    let futs: Vec<_> = (0..16u64).map(|i| parsl::core::call!(work, i)).collect();
    let gate = barrier(&dfk, futs);
    gate.result().unwrap();
    assert_eq!(PHASE1.load(Ordering::SeqCst), 16);
    dfk.shutdown();
}

#[test]
fn bash_and_python_apps_mix_in_one_graph() {
    let dir = std::env::temp_dir().join(format!("parsl-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("listing.txt");

    let dfk = DataFlowKernel::builder().executor(htex()).build().unwrap();
    // Bash app writes a file; a python app depending on its exit code
    // reads it back (the file path is fixed; the dependency edge orders
    // the two).
    let write = dfk.bash_app_cfg(
        "write_listing",
        AppOptions::default(),
        BashOptions::default(),
        {
            let out = out.clone();
            move |n: u64| format!("seq 1 {n} > {}", out.display())
        },
    );
    let count = dfk.python_app("count_lines", {
        let out = out.clone();
        move |_exit: i32| {
            std::fs::read_to_string(&out)
                .map(|s| s.lines().count() as u64)
                .unwrap_or(0)
        }
    });
    let wrote = parsl::core::call!(write, 17u64);
    let lines = parsl::core::call!(count, wrote);
    assert_eq!(lines.result().unwrap(), 17);
    dfk.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn executor_pinning_routes_staging_and_compute_separately() {
    let store = Arc::new(MemoryStore::new());
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::with_label(
            "compute", 2,
        ))
        .executor(parsl::executors::ThreadPoolExecutor::with_label(
            "transfer", 1,
        ))
        .monitor(store.clone())
        .build()
        .unwrap();
    let dm = DataManager::new(
        &dfk,
        DataManagerConfig {
            globus_executor: Some("transfer".into()),
            ..Default::default()
        },
    );
    let staged = dm.stage_in(File::parse("globus://ep/data/x.h5"));
    staged.result().unwrap();
    dfk.wait_for_all();
    let globus_tasks: Vec<_> = store
        .timelines()
        .into_iter()
        .filter(|(_, t)| t.app.contains("globus"))
        .collect();
    assert!(!globus_tasks.is_empty());
    assert!(globus_tasks
        .iter()
        .all(|(_, t)| t.executor.as_deref() == Some("transfer")));
    dfk.shutdown();
}
