//! Workspace-wiring smoke test: drives the facade crate end-to-end on a
//! real (threaded) executor and checks that the re-export surface exposes
//! every member crate.
//!
//! Everything here goes through `parsl::...` paths only — if a re-export
//! goes missing from `src/lib.rs`, this file stops compiling.

use parsl::prelude::*;
use std::sync::Arc;

/// End-to-end: registration → dependency graph → ThreadPoolExecutor
/// dispatch → future resolution, via the facade prelude alone.
#[test]
fn prelude_drives_threadpool_end_to_end() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(4))
        .build()
        .expect("kernel starts");

    let square = dfk.python_app("square", |x: u64| x * x);
    let sum = dfk.python_app("sum", |v: Vec<u64>| v.into_iter().sum::<u64>());

    // Fan out 16 squares, join them, reduce.
    let futs: Vec<AppFuture<u64>> = (1..=16).map(|i| parsl::core::call!(square, i)).collect();
    let joined = parsl::core::combinators::join_all(&dfk, futs);
    let total = sum.call((Dep::future(joined),));
    let expected: u64 = (1..=16u64).map(|i| i * i).sum();
    assert_eq!(total.result().expect("graph computes"), expected);

    // State accounting is visible through the facade too.
    dfk.wait_for_all();
    assert_eq!(dfk.live_tasks(), 0);
    let counts = dfk.state_counts();
    let done = counts.get(&TaskState::Done).copied().unwrap_or(0);
    assert!(
        done >= 18,
        "16 squares + join + sum should be Done, saw {done}"
    );
    dfk.shutdown();
}

/// Failure paths surface through the facade's error re-exports.
#[test]
fn prelude_exposes_error_taxonomy() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(2))
        .build()
        .unwrap();
    let boom = dfk.python_app_fallible("boom", || -> Result<u8, AppError> {
        Err(AppError::msg("nope"))
    });
    match parsl::core::call!(boom).result() {
        Err(ParslError::Task(TaskError::App(AppError::Failure(m)))) => assert_eq!(m, "nope"),
        other => panic!("expected app failure, got {other:?}"),
    }
    dfk.shutdown();
}

/// Every member crate is reachable through the facade: touch one
/// load-bearing item per re-exported crate.
#[test]
fn reexport_surface_is_complete() {
    // parsl::core
    let _cfg = parsl::core::Config::builder();
    // parsl::executors
    let _tp = parsl::executors::ThreadPoolExecutor::new(1);
    // parsl::providers
    let _provider = parsl::providers::LocalProvider::new(1);
    // parsl::data
    let file = parsl::data::File::parse("http://host/data.bin");
    assert_eq!(file.scheme, parsl::data::Scheme::Http);
    // parsl::monitor
    let _store = parsl::monitor::MemoryStore::default();
    // parsl::baselines — executor models from the paper's comparison set.
    let _ipp = baselines_probe();
    // wire: serialization substrate.
    let bytes = parsl::wire::to_bytes(&42u64).unwrap();
    assert_eq!(parsl::wire::from_bytes::<u64>(&bytes).unwrap(), 42);
    // nexus: message fabric.
    let fabric = Arc::new(parsl::nexus::Fabric::new());
    let ep = fabric.bind(parsl::nexus::Addr::new("smoke")).unwrap();
    ep.send(
        &parsl::nexus::Addr::new("smoke"),
        parsl::wire::to_bytes(&1u8).unwrap().into(),
    )
    .unwrap();
    assert!(ep.recv_timeout(std::time::Duration::from_secs(1)).is_ok());
    // simnet/simcluster: the simulation substrate.
    let _t = parsl::simnet::SimTime::ZERO;
    let midway = parsl::simcluster::machines::midway();
    assert!(midway.total_workers() > 0);
    // minimpi: communicator used by EXEX.
    let ranks = parsl::minimpi::World::create(2);
    assert_eq!(ranks.len(), 2);
    assert_eq!(ranks[0].size(), 2);
}

fn baselines_probe() -> parsl::baselines::IppConfig {
    parsl::baselines::IppConfig::default()
}
