//! Integration: the fault-tolerance story of §3.7 and §4.3.1 — node
//! failures detected by heartbeats, retries, dependency failure
//! propagation, and checkpoint-based recovery across "program runs".

use parsl::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn htex_survives_rolling_node_failures() {
    let htex = Arc::new(parsl::executors::HtexExecutor::new(
        parsl::executors::HtexConfig {
            workers_per_node: 2,
            nodes_per_block: 3,
            init_blocks: 1,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(150),
            ..Default::default()
        },
    ));
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .retries(4)
        .build()
        .unwrap();

    let work = dfk.python_app("work", |x: u64| {
        std::thread::sleep(Duration::from_millis(30));
        x + 1
    });
    let futs: Vec<_> = (0..60u64).map(|i| parsl::core::call!(work, i)).collect();

    // Kill nodes while the campaign runs; replacements keep capacity up.
    for round in 0..2 {
        std::thread::sleep(Duration::from_millis(60));
        let nodes = htex.nodes();
        if let Some(victim) = nodes.first() {
            htex.kill_node(victim);
            htex.add_node();
        }
        let _ = round;
    }

    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result().unwrap(),
            i as u64 + 1,
            "task {i} must survive failures"
        );
    }
    dfk.shutdown();
}

#[test]
fn manager_death_mid_batch_reports_and_retries_all_outstanding() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static EXECS: AtomicU32 = AtomicU32::new(0);
    EXECS.store(0, Ordering::SeqCst);

    // One node whose manager advertises a deep prefetch queue: the whole
    // fan-out lands on it as a single batch, most of it sitting unexecuted
    // in the manager's backlog.
    let htex = Arc::new(parsl::executors::HtexExecutor::new(
        parsl::executors::HtexConfig {
            workers_per_node: 2,
            prefetch: 16,
            batch_size: 16,
            init_blocks: 1,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(150),
            ..Default::default()
        },
    ));
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .retries(3)
        .build()
        .unwrap();

    let root = dfk.python_app("gate", || 0u64);
    let slow = dfk.python_app("slow", |gate: u64, x: u64| {
        EXECS.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(40));
        gate + x * 3
    });
    // Gated fan-out: all 12 children dispatch as one submit_batch when the
    // root completes (§4.3.1 batching through the interchange).
    let gate = parsl::core::call!(root);
    let futs: Vec<_> = (0..12u64)
        .map(|i| slow.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();

    // Let the batch land and partially execute, then kill the manager that
    // holds it. Every task still outstanding in the batch must be reported
    // back (heartbeat expiry → ManagerLost) and retried on the
    // replacement node.
    std::thread::sleep(Duration::from_millis(100));
    let nodes = htex.nodes();
    htex.kill_node(nodes.first().expect("one node up"));
    htex.add_node();

    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            i as u64 * 3,
            "task {i} must survive the mid-batch manager loss"
        );
    }
    assert!(
        EXECS.load(Ordering::SeqCst) >= 12,
        "every task in the lost batch must have executed (some twice), saw {}",
        EXECS.load(Ordering::SeqCst)
    );
    let counts = dfk.state_counts();
    assert_eq!(
        counts.get(&TaskState::Done),
        Some(&13),
        "gate + 12 children all Done"
    );
    dfk.shutdown();
    assert_eq!(
        htex.outstanding(),
        0,
        "no task left marked outstanding after recovery"
    );
}

#[test]
fn manager_death_with_partially_reported_results_loses_and_duplicates_nothing() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static RUNS: AtomicU32 = AtomicU32::new(0);
    RUNS.store(0, Ordering::SeqCst);

    // Small result batches + slow tasks: the manager reports results a few
    // frames at a time, so when it is killed mid-campaign some of its batch
    // is already reported and the rest is still outstanding on it. The
    // interchange's ManagerLost report arrives as ONE outcome batch through
    // the batched completion plane; the DFK must retry exactly the
    // unreported remainder — nothing lost, nothing finalized twice.
    let htex = Arc::new(parsl::executors::HtexExecutor::new(
        parsl::executors::HtexConfig {
            workers_per_node: 2,
            prefetch: 16,
            batch_size: 2,
            init_blocks: 1,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(150),
            ..Default::default()
        },
    ));
    let store = Arc::new(parsl::monitor::MemoryStore::new());
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .retries(3)
        .monitor(store.clone())
        .build()
        .unwrap();

    let root = dfk.python_app("gate", || 0u64);
    let slow = dfk.python_app("slow", |gate: u64, x: u64| {
        RUNS.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(25));
        gate + x * 5
    });
    let gate = parsl::core::call!(root);
    let futs: Vec<_> = (0..12u64)
        .map(|i| slow.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();

    // Let several results flow back (2 workers × ~25 ms ≈ 6+ reported),
    // then kill the manager while the rest of the batch sits on it.
    std::thread::sleep(Duration::from_millis(120));
    let nodes = htex.nodes();
    htex.kill_node(nodes.first().expect("one node up"));
    htex.add_node();

    // Nothing lost: every future resolves with the right value.
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            i as u64 * 5,
            "task {i} must survive the partially-reported batch loss"
        );
    }
    dfk.wait_for_all();

    // Nothing finalized twice: exactly one terminal monitor event per
    // task, and the terminal histogram is all-Done.
    let counts = dfk.state_counts();
    assert_eq!(counts.get(&TaskState::Done), Some(&13), "gate + 12 Done");
    let mut terminal_events: std::collections::HashMap<u64, usize> = Default::default();
    for e in store.events() {
        if let parsl::core::MonitorEvent::Task { task, state, .. } = e {
            if state.is_terminal() {
                *terminal_events.entry(task.0).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(terminal_events.len(), 13, "every task reached terminal");
    for (task, n) in &terminal_events {
        assert_eq!(*n, 1, "task {task} finalized {n} times");
    }
    // At least the unreported remainder re-ran; duplicates beyond one
    // re-execution per lost task would betray double-processing.
    let runs = RUNS.load(Ordering::SeqCst);
    assert!(
        (12..=24).contains(&runs),
        "expected 12..=24 executions (12 + retried remainder), saw {runs}"
    );
    dfk.shutdown();
    assert_eq!(htex.outstanding(), 0, "outstanding gauge restored");
}

#[test]
fn exex_pool_fate_sharing_is_recovered_by_retries() {
    let exex = Arc::new(parsl::executors::ExexExecutor::new(
        parsl::executors::ExexConfig {
            ranks_per_pool: 3,
            init_pools: 2,
            heartbeat_period: Duration::from_millis(30),
            heartbeat_threshold: Duration::from_millis(150),
            ..Default::default()
        },
    ));
    let dfk = DataFlowKernel::builder()
        .executor_arc(exex.clone())
        .retries(3)
        .build()
        .unwrap();
    let slow = dfk.python_app("slow", |x: u64| {
        std::thread::sleep(Duration::from_millis(100));
        x * 2
    });
    let futs: Vec<_> = (0..8u64).map(|i| parsl::core::call!(slow, i)).collect();
    std::thread::sleep(Duration::from_millis(50));
    // Crash one pool: every rank in it dies together (MPI semantics).
    let pools = exex.pools();
    exex.kill_pool(&pools[0]);
    exex.add_pool();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), 2 * i as u64);
    }
    dfk.shutdown();
}

#[test]
fn dependency_failure_cascades_through_deep_graph() {
    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(2))
        .build()
        .unwrap();
    let root_fail = dfk.python_app_fallible("root", || -> Result<u64, AppError> {
        Err(AppError::msg("dead"))
    });
    let inc = dfk.python_app("inc", |x: u64| x + 1);
    // fail -> a -> b -> c: all three descendants must be DepFail.
    let f0 = parsl::core::call!(root_fail);
    let f1 = parsl::core::call!(inc, f0);
    let f2 = parsl::core::call!(inc, &f1);
    let f3 = parsl::core::call!(inc, &f2);
    for f in [&f1, &f2, &f3] {
        assert!(matches!(
            f.result(),
            Err(ParslError::Task(TaskError::DependencyFailed { .. }))
        ));
    }
    let counts = dfk.state_counts();
    assert_eq!(counts.get(&TaskState::DepFail), Some(&3));
    assert_eq!(counts.get(&TaskState::Failed), Some(&1));
    dfk.shutdown();
}

#[test]
fn walltime_plus_retries_recover_a_hung_task() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static CALLS: AtomicU32 = AtomicU32::new(0);
    CALLS.store(0, Ordering::SeqCst);

    let dfk = DataFlowKernel::builder()
        .executor(parsl::executors::ThreadPoolExecutor::new(2))
        .retries(1)
        .build()
        .unwrap();
    let sometimes_hangs = dfk.python_app_cfg(
        "hangs_once",
        AppOptions {
            walltime: Some(Duration::from_millis(80)),
            ..Default::default()
        },
        |x: u64| -> Result<u64, AppError> {
            if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_secs(30)); // hang
            }
            Ok(x)
        },
    );
    let f = parsl::core::call!(sometimes_hangs, 5u64);
    assert_eq!(f.result_timeout(Duration::from_secs(10)).unwrap(), 5);
    assert!(
        CALLS.load(Ordering::SeqCst) >= 2,
        "the hung attempt must have been retried"
    );
    dfk.shutdown();
}

#[test]
fn checkpoint_recovers_partial_campaign() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let ckpt = std::env::temp_dir().join(format!("parsl-ft-ckpt-{}.dat", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let executions = Arc::new(AtomicU32::new(0));

    // "Run" 1: completes half the campaign, then the program "crashes"
    // (we simply stop submitting and shut down).
    {
        let dfk = DataFlowKernel::builder()
            .executor(parsl::executors::ThreadPoolExecutor::new(2))
            .memoize(true)
            .checkpoint_file(&ckpt)
            .build()
            .unwrap();
        let e = Arc::clone(&executions);
        let work = dfk.python_app("work", move |x: u64| {
            e.fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        for i in 0..10u64 {
            assert_eq!(parsl::core::call!(work, i).result().unwrap(), i * 10);
        }
        dfk.shutdown();
    }
    assert_eq!(executions.load(Ordering::SeqCst), 10);

    // "Run" 2: the full campaign (20 tasks); the first 10 come from the
    // checkpoint, only 10 new ones execute.
    {
        let dfk = DataFlowKernel::builder()
            .executor(parsl::executors::ThreadPoolExecutor::new(2))
            .memoize(true)
            .load_checkpoint(&ckpt)
            .build()
            .unwrap();
        let e = Arc::clone(&executions);
        let work = dfk.python_app("work", move |x: u64| {
            e.fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        for i in 0..20u64 {
            assert_eq!(parsl::core::call!(work, i).result().unwrap(), i * 10);
        }
        let counts = dfk.state_counts();
        assert_eq!(counts.get(&TaskState::Memoized), Some(&10));
        dfk.shutdown();
    }
    assert_eq!(
        executions.load(Ordering::SeqCst),
        20,
        "only the missing half re-ran"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn llex_drops_faults_silently_as_documented() {
    // LLEX cannot detect worker loss; without walltime/retries the future
    // simply never resolves. We assert the *absence* of spurious failure.
    let llex = Arc::new(parsl::executors::LlexExecutor::new(
        parsl::executors::LlexConfig {
            workers: 1,
            ..Default::default()
        },
    ));
    let dfk = DataFlowKernel::builder()
        .executor_arc(llex.clone())
        .build()
        .unwrap();
    let slow = dfk.python_app("slow", |x: u64| {
        std::thread::sleep(Duration::from_millis(300));
        x
    });
    let f = parsl::core::call!(slow, 1u64);
    std::thread::sleep(Duration::from_millis(50));
    // Kill the only worker mid-task.
    let addr = nexus::Addr::new("llex:w-0");
    llex.kill_worker(&addr);
    assert!(
        matches!(
            f.result_timeout(Duration::from_millis(600)),
            Err(ParslError::Timeout)
        ),
        "LLEX must not fabricate a result or an error for a lost task"
    );
    dfk.shutdown();
}

// ---------------------------------------------------------------------------
// Real-process fault injection: SIGKILL a `parsl-worker` process that
// holds a partially-executed batch over TCP. Heartbeat expiry at the
// interchange must report every task the process held as ManagerLost,
// the DFK must retry each exactly once on the replacement node, and no
// task may be finalized twice.
// ---------------------------------------------------------------------------

/// Per-task retry counts plus per-task terminal-event counts (the
/// double-finalize witness).
#[derive(Default)]
struct FaultLedger {
    retries: std::sync::Mutex<std::collections::HashMap<u64, u32>>,
    terminals: std::sync::Mutex<std::collections::HashMap<u64, u32>>,
}

impl parsl::core::monitor::MonitorSink for FaultLedger {
    fn on_event(&self, event: &parsl::core::monitor::MonitorEvent) {
        use parsl::core::monitor::MonitorEvent;
        match event {
            MonitorEvent::Retry { task, .. } => {
                *self.retries.lock().unwrap().entry(task.0).or_insert(0) += 1;
            }
            MonitorEvent::Task { task, state, .. } if state.is_terminal() => {
                *self.terminals.lock().unwrap().entry(task.0).or_insert(0) += 1;
            }
            _ => {}
        }
    }
}

#[test]
fn sigkilled_tcp_worker_process_retries_outstanding_batch_exactly_once() {
    let ledger = Arc::new(FaultLedger::default());
    // One node whose manager prefetches deeply: the whole gated fan-out
    // lands on it as a single batch, mostly unexecuted.
    let htex = Arc::new(
        parsl::executors::HtexExecutor::tcp(
            parsl::executors::HtexConfig {
                workers_per_node: 2,
                prefetch: 16,
                batch_size: 16,
                init_blocks: 1,
                heartbeat_period: Duration::from_millis(50),
                heartbeat_threshold: Duration::from_millis(400),
                ..Default::default()
            },
            parsl::executors::TcpHtexOptions {
                worker_cmd: vec![env!("CARGO_BIN_EXE_parsl-worker").to_string()],
                ..Default::default()
            },
        )
        .expect("bind loopback hub"),
    );
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex.clone())
        .retries(3)
        .monitor(ledger.clone())
        .build()
        .unwrap();

    // Builtin-table apps: bodies run inside the worker process.
    let root = dfk.python_app("gate", || 0u64);
    let work = dfk.python_app("gated_sleep_mul", |gate: u64, ms: u64, x: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        gate + x * 3
    });
    let gate = parsl::core::call!(root);
    let futs: Vec<_> = (0..8u64)
        .map(|i| {
            work.call((
                Dep::future(gate.clone()),
                Dep::value(1500u64),
                Dep::value(i),
            ))
        })
        .collect();

    // The gate resolves quickly; its completion releases all 8 children
    // as one submit_batch. Give the batch time to land on the process
    // (2 executing, 6 prefetched — none finishes inside 1.5 s), then
    // SIGKILL the process holding it and bring up a replacement.
    assert_eq!(gate.result_timeout(Duration::from_secs(20)).unwrap(), 0);
    std::thread::sleep(Duration::from_millis(500));
    let nodes = htex.nodes();
    htex.kill_node(nodes.first().expect("one node up"));
    htex.add_node();

    for (i, f) in futs.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(60)).unwrap(),
            i as u64 * 3,
            "task {i} must survive the SIGKILL"
        );
    }
    dfk.wait_for_all();
    assert_eq!(
        dfk.state_counts().get(&TaskState::Done),
        Some(&9),
        "gate + 8 children all Done"
    );

    // Every child was outstanding at the kill: retried exactly once, and
    // exactly one terminal event each — nothing lost, nothing finalized
    // twice.
    let retries = ledger.retries.lock().unwrap().clone();
    let child_ids: Vec<u64> = futs.iter().map(|f| f.task_id().0).collect();
    for id in &child_ids {
        assert_eq!(
            retries.get(id),
            Some(&1),
            "task {id} must be retried exactly once, saw {retries:?}"
        );
    }
    assert_eq!(
        retries.len(),
        child_ids.len(),
        "only the held batch retries"
    );
    let terminals = ledger.terminals.lock().unwrap().clone();
    for (id, n) in &terminals {
        assert_eq!(*n, 1, "task {id} finalized {n} times");
    }
    assert_eq!(terminals.len(), 9, "gate + 8 children each finalized once");
    dfk.shutdown();
}
