//! Property: the transport is semantically invisible. For random layered
//! DAGs (including failing nodes and retries), running on an HTEX whose
//! managers are spawned `parsl-worker` *processes* over loopback TCP must
//! produce results, failure shapes, task-state histograms, and per-task
//! attempt counts identical to the same DAG on the in-proc fabric.
//!
//! Extends the `crates/core/tests/proptest_batching.rs` harness pattern;
//! the `node` app body is compiled into the worker's builtin table
//! (`parsl_executors::builtin`) with byte-identical semantics.

use parsl::core::combinators::join_all;
use parsl::core::error::{AppError, ParslError, TaskError};
use parsl::core::monitor::{MonitorEvent, MonitorSink};
use parsl::executors::{HtexConfig, HtexExecutor, TcpHtexOptions};
use parsl::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Random layered DAGs (same shape as proptest_batching): node (li, ni)
// depends on a subset of layer li−1 and computes base + Σ parents; nodes
// where `(li * 31 + ni) % 7 == 0` (and `with_failures`) fail instead,
// exercising retry and DepFail propagation across the socket.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Dag {
    layers: Vec<Vec<Vec<usize>>>,
    with_failures: bool,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    let layer_sizes = vec(1usize..4, 2..4);
    (layer_sizes, any::<bool>()).prop_flat_map(|(sizes, with_failures)| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(3)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(move |layers| Dag {
            layers,
            with_failures,
        })
    })
}

fn fails(dag: &Dag, li: usize, ni: usize) -> bool {
    dag.with_failures && (li * 31 + ni) % 7 == 0
}

/// Per-task retry counts (the attempt-count witness).
#[derive(Default)]
struct Retries(std::sync::Mutex<std::collections::HashMap<u64, u32>>);

impl MonitorSink for Retries {
    fn on_event(&self, event: &MonitorEvent) {
        if let MonitorEvent::Retry { task, .. } = event {
            *self.0.lock().unwrap().entry(task.0).or_insert(0) += 1;
        }
    }
}

struct RunOutput {
    values: Vec<Vec<Result<u64, &'static str>>>,
    task_count: usize,
    state_counts: Vec<(TaskState, usize)>,
    retries: Vec<(u64, u32)>,
}

fn htex_config() -> HtexConfig {
    HtexConfig {
        workers_per_node: 2,
        nodes_per_block: 2,
        init_blocks: 1,
        prefetch: 4,
        batch_size: 8,
        heartbeat_period: Duration::from_millis(50),
        heartbeat_threshold: Duration::from_secs(5),
        ..Default::default()
    }
}

fn run(dag: &Dag, tcp: bool) -> RunOutput {
    let retries = Arc::new(Retries::default());
    let htex: Arc<HtexExecutor> = if tcp {
        Arc::new(
            HtexExecutor::tcp(
                htex_config(),
                TcpHtexOptions {
                    worker_cmd: vec![env!("CARGO_BIN_EXE_parsl-worker").to_string()],
                    ..Default::default()
                },
            )
            .expect("bind loopback hub"),
        )
    } else {
        Arc::new(HtexExecutor::new(htex_config()))
    };
    let dfk = DataFlowKernel::builder()
        .executor_arc(htex)
        .retries(1)
        .monitor(retries.clone())
        .build()
        .unwrap();
    // Must match the worker's builtin `node` body byte for byte.
    let node = dfk.python_app_fallible(
        "node",
        |base: u64, deps: Vec<u64>, fail: bool| -> Result<u64, AppError> {
            if fail {
                return Err(AppError::msg("poisoned node"));
            }
            Ok(deps.into_iter().fold(base, u64::wrapping_add))
        },
    );

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = join_all(&dfk, dep_futs);
            let f = node.call((
                Dep::value(base),
                Dep::future(joined),
                Dep::value(fails(dag, li, ni)),
            ));
            layer_futs.push(f);
        }
        futures.push(layer_futs);
    }

    let values: Vec<Vec<Result<u64, &'static str>>> = futures
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|f| match f.result_timeout(Duration::from_secs(60)) {
                    Ok(v) => Ok(v),
                    Err(ParslError::Task(TaskError::App(_))) => Err("app"),
                    Err(ParslError::Task(TaskError::DependencyFailed { .. })) => Err("dep"),
                    Err(e) => panic!("unexpected error shape: {e:?}"),
                })
                .collect()
        })
        .collect();

    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let mut state_counts: Vec<(TaskState, usize)> = dfk.state_counts().into_iter().collect();
    state_counts.sort_by_key(|(s, _)| format!("{s}"));
    dfk.shutdown();
    let mut sorted: Vec<(u64, u32)> = retries
        .0
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    sorted.sort();
    RunOutput {
        values,
        task_count,
        state_counts,
        retries: sorted,
    }
}

proptest! {
    // TCP runs spawn real processes; keep the case count CI-sized.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Loopback-TCP HTEX and in-proc HTEX are observationally identical:
    /// same per-node values and failure kinds, same task count, same
    /// terminal-state histogram, same per-task attempt counts.
    #[test]
    fn tcp_htex_equals_in_proc_htex(dag in dag_strategy()) {
        let in_proc = run(&dag, false);
        let tcp = run(&dag, true);
        prop_assert_eq!(in_proc.values, tcp.values);
        prop_assert_eq!(in_proc.task_count, tcp.task_count);
        prop_assert_eq!(in_proc.state_counts, tcp.state_counts);
        prop_assert_eq!(in_proc.retries, tcp.retries);
    }
}
