//! Property tests on the dependency machinery: for random DAGs, execution
//! must respect dependency order, produce deterministic values, and count
//! states consistently — on both the inline and the multi-threaded
//! executors.

use parsl::core::combinators::join_all;
use parsl::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// A random DAG in layered form: each node sums a subset of the previous
/// layer's nodes (plus its own index).
#[derive(Debug, Clone)]
struct LayeredDag {
    /// For each node in each layer: indices into the previous layer.
    layers: Vec<Vec<Vec<usize>>>,
}

fn dag_strategy() -> impl Strategy<Value = LayeredDag> {
    // 2..5 layers of 1..6 nodes; edges chosen per node.
    let layer_sizes = vec(1usize..6, 2..5);
    layer_sizes.prop_flat_map(|sizes| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(4)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(|layers| LayeredDag { layers })
    })
}

/// Reference execution: plain sequential evaluation.
fn reference_values(dag: &LayeredDag) -> Vec<Vec<u64>> {
    let mut values: Vec<Vec<u64>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_vals = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let mut v = (li as u64 + 1) * 1000 + ni as u64;
            for &d in deps {
                v = v.wrapping_add(values[li - 1][d]);
            }
            layer_vals.push(v);
        }
        values.push(layer_vals);
    }
    values
}

/// Execute the DAG on a DataFlowKernel and compare with the reference.
fn run_dag(dfk: &Arc<DataFlowKernel>, dag: &LayeredDag) {
    let combine = dfk.python_app("combine", |base: u64, deps: Vec<u64>| {
        deps.into_iter().fold(base, u64::wrapping_add)
    });
    let expected = reference_values(dag);

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = join_all(dfk, dep_futs);
            let f = combine.call((Dep::value(base), Dep::future(joined)));
            layer_futs.push(f);
        }
        futures.push(layer_futs);
    }

    for (li, layer) in futures.iter().enumerate() {
        for (ni, f) in layer.iter().enumerate() {
            let got = f.result().expect("node computes");
            assert_eq!(got, expected[li][ni], "node ({li},{ni})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs compute reference values on the inline executor.
    #[test]
    fn dag_values_match_reference_inline(dag in dag_strategy()) {
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap();
        run_dag(&dfk, &dag);
        dfk.wait_for_all();
        prop_assert_eq!(dfk.live_tasks(), 0);
        dfk.shutdown();
    }

    /// The same DAGs compute the same values under real thread parallelism
    /// (order of completion differs; values must not).
    #[test]
    fn dag_values_match_reference_threaded(dag in dag_strategy()) {
        let dfk = DataFlowKernel::builder()
            .executor(parsl::executors::ThreadPoolExecutor::new(4))
            .build()
            .unwrap();
        run_dag(&dfk, &dag);
        dfk.wait_for_all();
        dfk.shutdown();
    }

    /// Memoization must never change results, only execution counts.
    #[test]
    fn memoization_is_transparent(inputs in vec(0u64..50, 1..30)) {
        let plain = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap();
        let memo = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .memoize(true)
            .build()
            .unwrap();
        let f1 = plain.python_app("f", |x: u64| x.wrapping_mul(2654435761));
        let f2 = memo.python_app("f", |x: u64| x.wrapping_mul(2654435761));
        for &x in &inputs {
            let a = parsl::core::call!(f1, x).result().unwrap();
            let b = parsl::core::call!(f2, x).result().unwrap();
            prop_assert_eq!(a, b);
        }
        plain.shutdown();
        memo.shutdown();
    }

    /// Every submitted task reaches exactly one terminal state, and the
    /// state histogram sums to the task count.
    #[test]
    fn state_accounting_is_consistent(n_ok in 1usize..20, n_fail in 0usize..5) {
        let dfk = DataFlowKernel::builder()
            .executor(parsl::executors::ThreadPoolExecutor::new(2))
            .build()
            .unwrap();
        let ok = dfk.python_app("ok", |x: u64| x);
        let bad = dfk.python_app_fallible(
            "bad",
            || -> Result<u64, AppError> { Err(AppError::msg("no")) },
        );
        let mut futs = Vec::new();
        for i in 0..n_ok {
            futs.push(parsl::core::call!(ok, i as u64));
        }
        for _ in 0..n_fail {
            futs.push(parsl::core::call!(bad));
        }
        dfk.wait_for_all();
        let counts = dfk.state_counts();
        let total: usize = counts.values().sum();
        prop_assert_eq!(total, n_ok + n_fail);
        prop_assert_eq!(counts.get(&TaskState::Done).copied().unwrap_or(0), n_ok);
        prop_assert_eq!(counts.get(&TaskState::Failed).copied().unwrap_or(0), n_fail);
        dfk.shutdown();
    }
}
